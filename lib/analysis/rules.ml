type t = {
  id : string;
  name : string;
  severity : Diagnostic.severity;
  doc : string;
}

let syntax =
  {
    id = "R0";
    name = "syntax";
    severity = Diagnostic.Error;
    doc = "every linted file must parse with the installed compiler front end";
  }

let determinism =
  {
    id = "R1";
    name = "determinism";
    severity = Diagnostic.Error;
    doc =
      "library code must not read ambient randomness or wall-clock time, nor \
       iterate hash tables in unspecified order: a run is a pure function of \
       its seed";
  }

let output_hygiene =
  {
    id = "R2";
    name = "output-hygiene";
    severity = Diagnostic.Error;
    doc =
      "library code must not print to std channels directly; formatting goes \
       through Fmt, logging through Logs";
  }

let partiality =
  {
    id = "R3";
    name = "partiality";
    severity = Diagnostic.Error;
    doc =
      "library code avoids anonymous partial escapes (failwith, assert \
       false, invalid_arg, Option.get, List.hd/tl) outside whitelisted, \
       documented preconditions";
  }

let interfaces =
  {
    id = "R4";
    name = "interfaces";
    severity = Diagnostic.Error;
    doc = "every library .ml has a matching .mli that pins its public surface";
  }

let detector_contract =
  {
    id = "R5";
    name = "detector-contract";
    severity = Diagnostic.Error;
    doc =
      "every detector packed into the registry exposes the Detector.S \
       contract (name/train/score)";
  }

let concurrency =
  {
    id = "R6";
    name = "concurrency";
    severity = Diagnostic.Error;
    doc =
      "library code must not touch Domain/Atomic/Mutex/Condition/Semaphore \
       outside lib/util/pool.ml and lib/core/serve.ml: all parallelism flows \
       through the pool (or the serve shard loop) so the determinism \
       contract stays auditable";
  }

let hot_path =
  {
    id = "R7";
    name = "hot-path";
    severity = Diagnostic.Error;
    doc =
      "detector score/score_range paths must not build window strings \
       (Trace.key) or run string-keyed lookups per window; score over the \
       raw trace through the allocation-free *_at trie cursor API";
  }

let swallow =
  {
    id = "R8";
    name = "swallow";
    severity = Diagnostic.Error;
    doc =
      "library code must not catch every exception with a bare wildcard or \
       variable handler: arbitrary failures belong to the supervisor via \
       Fault.classify, so a catch-all silently eats faults it was never \
       written for";
  }

let checkpoint =
  {
    id = "R9";
    name = "checkpoint";
    severity = Diagnostic.Error;
    doc =
      "every loop or recursive binding reachable from a train/score hot \
       path must reach Deadline.checkpoint, so the cooperative-deadline \
       contract survives new code";
  }

let fault_custody =
  {
    id = "R10";
    name = "fault-custody";
    severity = Diagnostic.Error;
    doc =
      "every exception constructor raisable on a supervised-task path must \
       be mapped by an explicit Fault.classify case: the \
       Transient/Fatal/Timeout taxonomy must never silently go incomplete";
  }

let allocation =
  {
    id = "R11";
    name = "allocation";
    severity = Diagnostic.Error;
    doc =
      "no closure construction, partial application, or boxed allocation \
       on the per-window scoring path: scoring cost must stay flat per \
       window";
  }

let suppression =
  {
    id = "R12";
    name = "suppression";
    severity = Diagnostic.Error;
    doc =
      "lint: allow markers must name known rules exactly and carry a \
       justification clause; a typo'd allow suppresses nothing, silently";
  }

let all =
  [
    syntax;
    determinism;
    output_hygiene;
    partiality;
    interfaces;
    detector_contract;
    concurrency;
    hot_path;
    swallow;
    checkpoint;
    fault_custody;
    allocation;
    suppression;
  ]

let diag rule (src : Source.t) ~line ~col message =
  Diagnostic.make ~rule:rule.id ~rule_name:rule.name ~severity:rule.severity
    ~file:src.Source.path ~line ~col message

let diag_at rule src (loc : Location.t) message =
  let p = loc.Location.loc_start in
  diag rule src ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    message

(* Variants for findings that do not sit in a [Source.t] (whole-program
   rules locate by call-graph node) or that need a non-default
   severity (R12's bare-allow warning). *)
let diag_path rule ~path ~line ~col message =
  Diagnostic.make ~rule:rule.id ~rule_name:rule.name ~severity:rule.severity
    ~file:path ~line ~col message

let diag_sev rule ~severity (src : Source.t) ~line ~col message =
  Diagnostic.make ~rule:rule.id ~rule_name:rule.name ~severity
    ~file:src.Source.path ~line ~col message

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

(* R12: the whitelist is part of the correctness argument, so its
   markers are linted too — in every file role, since a typo'd allow
   is dead weight wherever it sits.  Unknown or missing rule tokens
   are errors (the marker suppresses nothing); a marker without a
   justification clause is a warning. *)
let known_tokens =
  "all"
  :: List.concat_map
       (fun r -> [ String.lowercase_ascii r.id; String.lowercase_ascii r.name ])
       all

let check_suppressions (src : Source.t) =
  List.concat_map
    (fun (line, (a : Source.allow)) ->
      if a.Source.tokens = [] then
        [
          diag suppression src ~line ~col:a.Source.marker_col
            "allow marker names no rules; write `lint: allow <rule> — \
             justification`";
        ]
      else
        let unknown =
          List.filter_map
            (fun (tok, col) ->
              if List.mem tok known_tokens then None
              else
                Some
                  (diag suppression src ~line ~col
                     (Printf.sprintf
                        "unknown rule token %S in allow marker; it suppresses \
                         nothing — use a rule id (r3), a rule name \
                         (partiality), or `all`"
                        tok)))
            a.Source.tokens
        in
        let bare =
          if a.Source.justified then []
          else
            [
              diag_sev suppression ~severity:Diagnostic.Warning src ~line
                ~col:a.Source.marker_col
                "bare allow marker; state why the rule is safe to suppress \
                 here: `lint: allow <rule> — justification`";
            ]
        in
        unknown @ bare)
    (Source.markers src)

let print_fns =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "prerr_char";
    "prerr_int";
    "prerr_float";
    "prerr_bytes";
  ]

let determinism_violation parts =
  match parts with
  | "Random" :: _ ->
      Some
        "Stdlib.Random is ambient state; thread randomness through \
         Seqdiv_util.Prng so every result is a function of its seed"
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
      Some
        "wall-clock reads make results depend on when they were computed; \
         take time as explicit input if it is data"
  | [ "Hashtbl"; "iter" ] | [ "Hashtbl"; "fold" ] ->
      Some
        "Hashtbl iteration order is unspecified; fold over sorted keys, or \
         whitelist the site if it is provably order-insensitive"
  | _ -> None

let output_violation parts =
  match parts with
  | [ "Printf"; "printf" ] | [ "Printf"; "eprintf" ] ->
      Some
        "library code must not print; render through Fmt or log through Logs"
  | [ f ] when List.mem f print_fns ->
      Some
        "library code must not print; return a string/formatter or log \
         through Logs"
  | _ -> None

(* R6: the concurrency primitives are legitimate only inside the worker
   pool; anywhere else in the library they would let order-dependent or
   racy computation reach results unaudited. *)
let concurrency_modules = [ "Domain"; "Atomic"; "Mutex"; "Condition"; "Semaphore" ]

let concurrency_violation parts =
  match parts with
  | m :: _ when List.mem m concurrency_modules ->
      Some
        (Printf.sprintf
           "%s belongs in lib/util/pool.ml: library code stays single-domain \
            and hands the pool pure closures (or whitelist with `lint: allow \
            concurrency`)"
           m)
  | _ -> None

(* Standing R6 exemptions.  [pool.ml] is the worker pool itself.
   [serve.ml] is the one long-running server module: it owns the
   listener socket, the per-connection reader/writer domains and the
   bounded shard queues, which cannot be expressed as pool tasks (they
   are not a finite batch of pure closures but live, stateful loops).
   Its determinism contract is enforced externally instead: the
   per-session incident log is proven identical to a serial Online
   replay by qcheck (test_session_table), at any shard count and across
   kill/resume. *)
let concurrency_exempt_paths = [ "lib/util/pool.ml"; "lib/core/serve.ml" ]

let concurrency_exempt (src : Source.t) =
  let p = src.Source.path in
  List.exists
    (fun exempt ->
      let n = String.length exempt in
      p = exempt
      || (String.length p > n
         && String.sub p (String.length p - n - 1) (n + 1) = "/" ^ exempt))
    concurrency_exempt_paths

let partiality_violation parts =
  match parts with
  | [ "failwith" ] ->
      Some
        "failwith raises an anonymous Failure; raise a dedicated exception \
         with context, or return a Result"
  | [ "invalid_arg" ] ->
      Some
        "invalid_arg is a partial escape; prefer a total API, or whitelist \
         the documented precondition"
  | [ "Option"; "get" ] ->
      Some "Option.get is partial; match on the option"
  | [ "List"; "hd" ] | [ "List"; "tl" ] ->
      Some "List.hd/List.tl are partial; match on the list"
  | _ -> None

(* R7: the scoring hot paths serve every window of every test stream;
   a string key built or hashed per window is exactly the allocation
   profile the trie-backed data layer removed.  Confined to detector
   implementations, and within those to the [score]/[score_range]
   bindings (train-time key building is legitimate). *)
let string_key_queries =
  [ "mem"; "count"; "freq"; "is_foreign"; "is_rare"; "is_common"; "find" ]

let hot_path_violation parts =
  match parts with
  | [ "Trace"; ("key" | "key_of_symbols") ] ->
      Some
        "builds a window string per call; score over Trace.raw with the \
         *_at cursor API (or whitelist with `lint: allow hot-path`)"
  | [ (("Seq_db" | "Seq_trie" | "Ngram_index") as m); f ]
    when List.mem f string_key_queries ->
      Some
        (Printf.sprintf
           "%s.%s is a string-keyed lookup; descend with the %s *_at cursor \
            API over the raw trace (or whitelist with `lint: allow hot-path`)"
           m f m)
  | [ "Hashtbl"; ("find" | "find_opt" | "mem") ] ->
      Some
        "per-window hash lookups belong to the replaced string-key backend; \
         read counts out of the shared trie (or whitelist with `lint: allow \
         hot-path`)"
  | _ -> None

(* R8: a handler that matches every exception takes custody of faults
   it cannot understand — chaos injections, Out_of_memory, Stack_overflow
   — and hides them from the supervisor.  The fault layer is the one
   module whose job is exactly that custody, so it is exempt; every
   other site must name the exceptions it expects or carry a
   `lint: allow swallow` marker. *)
let fault_path = "lib/core/fault.ml"

let swallow_exempt (src : Source.t) =
  let p = src.Source.path and n = String.length fault_path in
  p = fault_path
  || (String.length p > n
     && String.sub p (String.length p - n - 1) (n + 1) = "/" ^ fault_path)

let rec catch_all_pattern (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias (inner, _) -> catch_all_pattern inner
  | Parsetree.Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let swallow_message =
  "catch-all exception handler; name the exceptions this site expects — \
   arbitrary failures belong to the supervisor through Fault (or whitelist \
   with `lint: allow swallow`)"

(* Flag the catch-all handler cases of [try]/[match ... with exception]. *)
let swallow_violations (cases : Parsetree.case list) ~exception_cases_only =
  List.filter_map
    (fun (c : Parsetree.case) ->
      if c.Parsetree.pc_guard <> None then None
      else
        let pat = c.Parsetree.pc_lhs in
        match pat.Parsetree.ppat_desc with
        | Parsetree.Ppat_exception inner when catch_all_pattern inner ->
            Some inner.Parsetree.ppat_loc
        | _ when (not exception_cases_only) && catch_all_pattern pat ->
            Some pat.Parsetree.ppat_loc
        | _ -> None)
    cases

let detectors_dir (src : Source.t) =
  let dir = Source.dir src in
  let suffix = "detectors" in
  let n = String.length suffix and dn = String.length dir in
  dir = suffix || (dn > n && String.sub dir (dn - n - 1) (n + 1) = "/" ^ suffix)

let score_binding_names = [ "score"; "score_range" ]

let check_hot_paths src structure =
  let found = ref [] in
  let default = Ast_iterator.default_iterator in
  let in_score = ref false in
  let expr self (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } when !in_score -> (
        match hot_path_violation (strip_stdlib (flatten txt)) with
        | Some m -> found := diag_at hot_path src loc m :: !found
        | None -> ())
    | _ -> ());
    default.Ast_iterator.expr self e
  in
  let value_binding self (vb : Parsetree.value_binding) =
    let is_score =
      match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
      | Parsetree.Ppat_var { txt; _ } -> List.mem txt score_binding_names
      | _ -> false
    in
    if is_score then begin
      let saved = !in_score in
      in_score := true;
      default.Ast_iterator.value_binding self vb;
      in_score := saved
    end
    else default.Ast_iterator.value_binding self vb
  in
  let it = { default with Ast_iterator.expr; Ast_iterator.value_binding } in
  it.Ast_iterator.structure it structure;
  List.rev !found

(* R1–R3 over one parsed library implementation. *)
let check_structure src structure =
  let found = ref [] in
  let add rule loc message = found := diag_at rule src loc message :: !found in
  let on_ident lid (loc : Location.t) =
    let parts = strip_stdlib (flatten lid) in
    (match determinism_violation parts with
    | Some m -> add determinism loc m
    | None -> ());
    (match output_violation parts with
    | Some m -> add output_hygiene loc m
    | None -> ());
    (match concurrency_violation parts with
    | Some m when not (concurrency_exempt src) -> add concurrency loc m
    | Some _ | None -> ());
    match partiality_violation parts with
    | Some m -> add partiality loc m
    | None -> ()
  in
  let default = Ast_iterator.default_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> on_ident txt loc
    | Parsetree.Pexp_assert
        {
          pexp_desc = Parsetree.Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
          _;
        } ->
        add partiality e.Parsetree.pexp_loc
          "assert false is not total; make the invariant explicit in the \
           types or raise a dedicated exception"
    | Parsetree.Pexp_try (_, cases) when not (swallow_exempt src) ->
        List.iter
          (fun loc -> add swallow loc swallow_message)
          (swallow_violations cases ~exception_cases_only:false)
    | Parsetree.Pexp_match (_, cases) when not (swallow_exempt src) ->
        List.iter
          (fun loc -> add swallow loc swallow_message)
          (swallow_violations cases ~exception_cases_only:true)
    | _ -> ());
    default.Ast_iterator.expr self e
  in
  let it = { default with Ast_iterator.expr } in
  it.Ast_iterator.structure it structure;
  List.rev !found

let check_parsed (src : Source.t) parsed =
  match parsed with
  | Source.Broken { line; col; message } -> [ diag syntax src ~line ~col message ]
  | Source.Structure structure when src.Source.role = Source.Lib ->
      check_structure src structure
      @ (if detectors_dir src then check_hot_paths src structure else [])
  | Source.Structure _ | Source.Signature _ -> []

let not_allowed (src : Source.t) (d : Diagnostic.t) =
  not
    (Source.allowed src ~rule:d.Diagnostic.rule ~rule_name:d.Diagnostic.rule_name
       ~line:d.Diagnostic.line)

let check_file src =
  check_suppressions src @ check_parsed src (Source.parse src)
  |> List.filter (not_allowed src)
  |> List.sort Diagnostic.compare

(* R4: every lib .ml needs a sibling .mli. *)
let check_interfaces files =
  let mli_bases =
    List.filter_map
      (fun (f : Source.t) ->
        if f.Source.kind = Source.Mli then Some (Source.base f) else None)
      files
  in
  List.filter_map
    (fun (f : Source.t) ->
      if
        f.Source.role = Source.Lib
        && f.Source.kind = Source.Ml
        && not (List.mem (Source.base f) mli_bases)
      then
        Some
          (diag interfaces f ~line:1 ~col:0
             (Printf.sprintf "missing interface: expected %s.mli alongside %s"
                (Source.base f) f.Source.path))
      else None)
    files

(* R5 helpers. *)
let packed_modules structure =
  let found = ref [] in
  let default = Ast_iterator.default_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_pack
        { Parsetree.pmod_desc = Parsetree.Pmod_ident { txt; loc }; _ } -> (
        match List.rev (flatten txt) with
        | name :: _ -> found := (name, loc) :: !found
        | [] -> ())
    | _ -> ());
    default.Ast_iterator.expr self e
  in
  let it = { default with Ast_iterator.expr } in
  it.Ast_iterator.structure it structure;
  let seen = ref [] in
  List.rev !found
  |> List.filter (fun (name, _) ->
         if List.mem name !seen then false
         else begin
           seen := name :: !seen;
           true
         end)

let signature_vals items =
  List.filter_map
    (fun (item : Parsetree.signature_item) ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd -> Some vd.Parsetree.pval_name.Location.txt
      | _ -> None)
    items

let includes_detector_s items =
  List.exists
    (fun (item : Parsetree.signature_item) ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_include incl -> (
          match incl.Parsetree.pincl_mod.Parsetree.pmty_desc with
          | Parsetree.Pmty_ident { txt; _ } -> (
              match List.rev (flatten txt) with
              | [ "S" ] -> true
              | "S" :: "Detector" :: _ -> true
              | _ -> false)
          | _ -> false)
      | _ -> false)
    items

let required_contract = [ "name"; "train"; "score" ]

let check_detector_contract files parsed_of =
  let registry =
    List.find_opt
      (fun (f : Source.t) ->
        f.Source.role = Source.Lib
        && f.Source.kind = Source.Ml
        && Source.module_name f = "Registry")
      files
  in
  match registry with
  | None -> []
  | Some reg -> (
      match parsed_of reg with
      | Source.Structure structure ->
          let interface_of name =
            let candidates =
              List.filter
                (fun (f : Source.t) ->
                  f.Source.kind = Source.Mli
                  && f.Source.role = Source.Lib
                  && Source.module_name f = name)
                files
            in
            match
              List.find_opt (fun f -> Source.dir f = Source.dir reg) candidates
            with
            | Some f -> Some f
            | None -> ( match candidates with f :: _ -> Some f | [] -> None)
          in
          packed_modules structure
          |> List.concat_map (fun (name, loc) ->
                 match interface_of name with
                 | None ->
                     [
                       diag_at detector_contract reg loc
                         (Printf.sprintf
                            "detector %s is in the registry but has no .mli; \
                             the contract cannot be checked"
                            name);
                     ]
                 | Some mli -> (
                     match parsed_of mli with
                     | Source.Signature items ->
                         if includes_detector_s items then []
                         else
                           let vals = signature_vals items in
                           let missing =
                             List.filter
                               (fun v -> not (List.mem v vals))
                               required_contract
                           in
                           if missing = [] then []
                           else
                             [
                               diag_at detector_contract reg loc
                                 (Printf.sprintf
                                    "detector %s does not satisfy the \
                                     Detector contract: %s missing %s \
                                     (declare the vals or include Detector.S)"
                                    name mli.Source.path
                                    (String.concat ", " missing));
                             ]
                     | Source.Structure _ | Source.Broken _ ->
                         (* An unparseable .mli is already an R0 finding. *)
                         []))
      | Source.Signature _ | Source.Broken _ -> [])

(* ---- Whole-program rules R9–R11 ----

   These run over the call graph of all library implementations at
   once; see Callgraph/Reach/Effects for the model and docs/LINTING.md
   for its documented imprecision. *)

(* R9: flag hot-path functions that loop without reaching a
   checkpoint, unless every hot caller is itself guarded. *)
let check_checkpoints g ~hot =
  let guarded = Effects.guarded g ~hot in
  List.filter_map
    (fun (fn : Callgraph.fn) ->
      if fn.Callgraph.has_loop && not (guarded fn.Callgraph.id) then
        Some
          (diag_path checkpoint ~path:fn.Callgraph.path ~line:fn.Callgraph.line
             ~col:fn.Callgraph.col
             (Printf.sprintf
                "%s.%s loops on a train/score hot path but never reaches \
                 Deadline.checkpoint; add a periodic checkpoint so the \
                 deadline can fire (or whitelist with `lint: allow \
                 checkpoint`)"
                fn.Callgraph.id.Callgraph.unit_name
                fn.Callgraph.id.Callgraph.fn_name))
      else None)
    hot

(* R10 helpers: the constructor heads matched by [Fault.classify]. *)
let rec pattern_constructors (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_construct ({ txt; _ }, _) -> (
      match List.rev (flatten txt) with c :: _ -> [ c ] | [] -> [])
  | Parsetree.Ppat_or (a, b) ->
      pattern_constructors a @ pattern_constructors b
  | Parsetree.Ppat_alias (inner, _) -> pattern_constructors inner
  | _ -> []

let classify_cases structure =
  let strip_head e =
    let rec go (e : Parsetree.expression) =
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_fun (_, _, _, body) -> go body
      | Parsetree.Pexp_newtype (_, body) -> go body
      | _ -> e
    in
    let body = go e in
    match body.Parsetree.pexp_desc with
    | Parsetree.Pexp_function cases -> Some cases
    | Parsetree.Pexp_match (_, cases) -> Some cases
    | _ -> None
  in
  List.find_map
    (fun (item : Parsetree.structure_item) ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
          List.find_map
            (fun (vb : Parsetree.value_binding) ->
              match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
              | Parsetree.Ppat_var { txt = "classify"; _ } -> (
                  match strip_head vb.Parsetree.pvb_expr with
                  | Some cases ->
                      Some
                        ( vb.Parsetree.pvb_loc,
                          List.concat_map
                            (fun (c : Parsetree.case) ->
                              pattern_constructors c.Parsetree.pc_lhs)
                            cases )
                  | None -> None)
              | _ -> None)
            vbs
      | _ -> None)
    structure

let check_fault_custody lib_mls ~hot =
  let classify =
    List.find_map
      (fun ((f : Source.t), structure) ->
        if Source.module_name f = "Fault" then
          match classify_cases structure with
          | Some (loc, ctors) -> Some (f, loc, ctors)
          | None -> None
        else None)
      lib_mls
  in
  match classify with
  | None -> []
  | Some (src, loc, mapped) ->
      Effects.raisable ~hot
      |> List.filter_map (fun (exn, (epath, eline, _)) ->
             if List.mem exn mapped then None
             else
               Some
                 (diag_at fault_custody src loc
                    (Printf.sprintf
                       "%s can be raised on a supervised-task path (e.g. at \
                        %s:%d) but Fault.classify has no case for it; map it \
                        explicitly (or whitelist with `lint: allow \
                        fault-custody`)"
                       exn epath eline)))

(* R11: curated external calls that allocate their result. *)
let external_allocator parts =
  match parts with
  | [
      "Array";
      ( "make" | "init" | "copy" | "append" | "sub" | "concat" | "of_list"
      | "to_list" | "map" | "mapi" | "make_matrix" | "of_seq" | "to_seq" );
    ] ->
      true
  | [
      "List";
      ( "map" | "mapi" | "init" | "append" | "rev" | "rev_append" | "filter"
      | "filter_map" | "concat" | "concat_map" | "sort" | "stable_sort"
      | "of_seq" | "to_seq" | "cons" );
    ] ->
      true
  | [
      "String";
      ( "make" | "init" | "sub" | "concat" | "map" | "mapi" | "of_seq"
      | "to_seq" | "split_on_char" | "cat" );
    ] ->
      true
  | "Bytes" :: _ | "Seq" :: _ :: _ -> true
  | [ "Buffer"; ("create" | "contents" | "to_bytes") ] -> true
  | [ "Hashtbl"; ("create" | "copy" | "add" | "replace") ] -> true
  | [ "Printf"; "sprintf" ] | [ "Format"; ("sprintf" | "asprintf") ] -> true
  | [ "Option"; ("map" | "some" | "bind" | "join" | "to_list") ] -> true
  | _ -> false

let alloc_kind_message = function
  | Callgraph.Closure -> "closure constructed"
  | Callgraph.Ref -> "ref cell allocated"
  | Callgraph.Tuple -> "tuple allocated"
  | Callgraph.Array_literal -> "array literal allocated"
  | Callgraph.Append -> "append (^/@) allocates"

let check_allocations g ~score =
  let pw = Effects.per_window g ~score in
  let diag_loc (loc : Location.t) message =
    let p = loc.Location.loc_start in
    fun path ->
      diag_path allocation ~path ~line:p.Lexing.pos_lnum
        ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
        message
  in
  List.concat_map
    (fun (fn : Callgraph.fn) ->
      let name =
        fn.Callgraph.id.Callgraph.unit_name ^ "."
        ^ fn.Callgraph.id.Callgraph.fn_name
      in
      let per_window_fn = pw fn.Callgraph.id in
      let of_alloc (a : Callgraph.alloc) =
        if per_window_fn || a.Callgraph.alloc_in_loop then
          Some
            (diag_loc a.Callgraph.alloc_loc
               (Printf.sprintf
                  "%s per scored window in %s; hoist it off the scoring path \
                   (or whitelist with `lint: allow allocation`)"
                  (alloc_kind_message a.Callgraph.kind)
                  name)
               fn.Callgraph.path)
        else None
      in
      let of_site (s : Callgraph.site) =
        if not (per_window_fn || s.Callgraph.in_loop) then None
        else
          match s.Callgraph.target with
          | Callgraph.External parts
            when s.Callgraph.args >= 1 && external_allocator parts ->
              Some
                (diag_loc s.Callgraph.site_loc
                   (Printf.sprintf
                      "%s allocates per scored window in %s; reuse a \
                       preallocated buffer (or whitelist with `lint: allow \
                       allocation`)"
                      (String.concat "." parts) name)
                   fn.Callgraph.path)
          | Callgraph.Internal id when s.Callgraph.args >= 1 -> (
              match Callgraph.find g id with
              | Some callee
                when callee.Callgraph.arity > 0
                     && (not callee.Callgraph.has_optional)
                     && s.Callgraph.args < callee.Callgraph.arity ->
                  Some
                    (diag_loc s.Callgraph.site_loc
                       (Printf.sprintf
                          "partial application of %s.%s allocates a closure \
                           per scored window in %s; apply all %d arguments \
                           (or whitelist with `lint: allow allocation`)"
                          id.Callgraph.unit_name id.Callgraph.fn_name name
                          callee.Callgraph.arity)
                       fn.Callgraph.path)
              | Some _ | None -> None)
          | Callgraph.Internal _ | Callgraph.External _ -> None
      in
      List.filter_map of_alloc fn.Callgraph.allocs
      @ List.filter_map of_site fn.Callgraph.sites)
    score

let check_program files parsed_of =
  let lib_mls =
    List.filter_map
      (fun (f : Source.t) ->
        if f.Source.role = Source.Lib && f.Source.kind = Source.Ml then
          match parsed_of f with
          | Source.Structure s -> Some (f, s)
          | Source.Signature _ | Source.Broken _ -> None
        else None)
      files
  in
  if lib_mls = [] then []
  else
    let g = Callgraph.build lib_mls in
    let hot = Reach.reachable g ~roots:(Reach.hot_roots g) in
    let score = Reach.reachable g ~roots:(Reach.score_roots g) in
    check_checkpoints g ~hot
    @ check_fault_custody lib_mls ~hot
    @ check_allocations g ~score

let run files =
  let parsed =
    List.map (fun (f : Source.t) -> (f.Source.path, Source.parse f)) files
  in
  let parsed_of (f : Source.t) = List.assoc f.Source.path parsed in
  let per_file =
    List.concat_map
      (fun f -> check_suppressions f @ check_parsed f (parsed_of f))
      files
  in
  let project =
    check_interfaces files
    @ check_detector_contract files parsed_of
    @ check_program files parsed_of
  in
  let source_of path =
    List.find_opt (fun (f : Source.t) -> f.Source.path = path) files
  in
  per_file @ project
  |> List.filter (fun (d : Diagnostic.t) ->
         match source_of d.Diagnostic.file with
         | Some src -> not_allowed src d
         | None -> true)
  |> List.sort_uniq Diagnostic.compare
