let hot_fn_names =
  [ "train"; "train_with"; "score"; "score_range"; "of_trie"; "compile" ]

let task_entries =
  [
    ("Trained", "train");
    ("Scoring", "outcome");
    ("Scoring", "incident_response");
    ("Seq_trie", "of_trace");
    ("Fault_plan", "trip");
    ("Flat_automaton", "compile");
    ("Flat_automaton", "make_scorer");
    ("Quantile", "observe");
    ("Adaptive_threshold", "step");
  ]

let score_fn_names = [ "score"; "score_range"; "compiled_score_range" ]

let score_entries =
  [
    ("Scoring", "outcome");
    ("Scoring", "incident_response");
    ("Scoring", "outcome_of_response");
    ("Detector", "compiled_score_range");
    ("Flat_automaton", "step");
    ("Flat_automaton", "state_score");
    ("Quantile", "observe");
    ("Adaptive_threshold", "step");
  ]

let in_detectors_dir (fn : Callgraph.fn) =
  let dir = Filename.dirname fn.Callgraph.path in
  dir = "detectors" || Filename.basename dir = "detectors"

let roots_of g ~names ~entries =
  List.filter_map
    (fun (fn : Callgraph.fn) ->
      let id = fn.Callgraph.id in
      if
        (in_detectors_dir fn && List.mem id.Callgraph.fn_name names)
        || List.mem (id.Callgraph.unit_name, id.Callgraph.fn_name) entries
      then Some id
      else None)
    (Callgraph.fns g)

let hot_roots g = roots_of g ~names:hot_fn_names ~entries:task_entries
let score_roots g = roots_of g ~names:score_fn_names ~entries:score_entries

let reachable g ~roots =
  let visited = Hashtbl.create 64 in
  let key (id : Callgraph.fn_id) =
    (id.Callgraph.unit_name, id.Callgraph.fn_name)
  in
  let rec visit id =
    if not (Hashtbl.mem visited (key id)) then begin
      Hashtbl.add visited (key id) ();
      match Callgraph.find g id with
      | None -> ()
      | Some fn ->
          List.iter
            (fun (s : Callgraph.site) ->
              match s.Callgraph.target with
              | Callgraph.Internal id' -> visit id'
              | Callgraph.External _ -> ())
            fn.Callgraph.sites
    end
  in
  List.iter visit roots;
  List.filter
    (fun (fn : Callgraph.fn) -> Hashtbl.mem visited (key fn.Callgraph.id))
    (Callgraph.fns g)
