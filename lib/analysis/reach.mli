(** Reachability over the call graph, rooted at the entry points the
    whole-program rules care about.

    The roots are declarative because the engine dispatches detectors
    through first-class modules, which a syntactic call graph cannot
    see: detector-directory bindings named [train]/[train_with]/
    [score]/[score_range]/[of_trie]/[compile] are hot roots by decree,
    alongside the named supervised-task entries in [lib/core], the
    shared-trie builder and the flat-automaton compiler.  The compiled
    scoring path ([Flat_automaton.step]/[state_score] and the shared
    [Detector.compiled_score_range] loop) is rooted in the R11 score
    set, so the fast path is provably allocation-free.  See
    docs/LINTING.md for the full list and rationale. *)

val hot_roots : Callgraph.t -> Callgraph.fn_id list
(** Entry points of train/score hot paths and supervised tasks. *)

val score_roots : Callgraph.t -> Callgraph.fn_id list
(** Entry points of the per-window scoring paths only (R11). *)

val reachable :
  Callgraph.t -> roots:Callgraph.fn_id list -> Callgraph.fn list
(** All graph nodes reachable from [roots] through internal call
    sites (including the roots themselves), in the graph's sorted
    order.  Roots that name no node are ignored. *)
