type severity = Warning | Error

type t = {
  rule : string;
  rule_name : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~rule_name ~severity ~file ~line ~col message =
  { rule; rule_name; severity; file; line; col; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Stdlib.compare (a.line, a.col) (b.line, b.col) with
      | 0 -> String.compare a.rule b.rule
      | d -> d)
  | d -> d

let is_error t = t.severity = Error

let severity_string = function Warning -> "warning" | Error -> "error"

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: %s [%s %s] %s" t.file t.line t.col
    (severity_string t.severity)
    t.rule t.rule_name t.message

let to_string t = Format.asprintf "%a" pp t
