type severity = Warning | Error

type t = {
  rule : string;
  rule_name : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~rule_name ~severity ~file ~line ~col message =
  { rule; rule_name; severity; file; line; col; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Stdlib.compare (a.line, a.col) (b.line, b.col) with
      | 0 -> (
          (* Rule then message: several whole-program findings can share
             a position (e.g. R10 reports every unmapped constructor at
             the [Fault.classify] binding), and the report order must
             not depend on the order the analysis discovered them. *)
          match String.compare a.rule b.rule with
          | 0 -> String.compare a.message b.message
          | d -> d)
      | d -> d)
  | d -> d

let is_error t = t.severity = Error

let severity_string = function Warning -> "warning" | Error -> "error"

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: %s [%s %s] %s" t.file t.line t.col
    (severity_string t.severity)
    t.rule t.rule_name t.message

let to_string t = Format.asprintf "%a" pp t
