(** Filesystem front end for the rule engine: load a source tree,
    run every rule, render the findings.

    [seqdiv-lint] (bin/lint) is a thin wrapper over this module, and
    [dune build @lint] runs it over [lib/], [bin/] and [bench/]. *)

val load_file : string -> Source.t
(** Read one file from disk.  The path is kept verbatim — the linter
    derives the file's role from its first segment, so pass paths
    relative to the repository root (e.g. [lib/stream/trace.ml]). *)

val load_tree : string list -> Source.t list
(** All [.ml]/[.mli] files under the given roots, sorted by path.
    Traversal order is deterministic (children visited in sorted
    order); [_build], [.git] and other dot-directories are skipped. *)

val run : string list -> Diagnostic.t list
(** [run roots] = [Rules.run (load_tree roots)]. *)

type format = Text | Json | Sarif

val format_of_string : string -> format option
(** ["text"] / ["json"] / ["sarif"]. *)

val render : format -> files:int -> Diagnostic.t list -> string
(** Render the findings in the requested format.  [Text] is the
    classic per-line report with a trailing summary ([files] is only
    used there); [Json] and [Sarif] delegate to {!Sarif}.  All three
    are byte-deterministic for equal inputs. *)

val report : Format.formatter -> files:int -> Diagnostic.t list -> unit
(** Render one line per diagnostic followed by a summary line
    ([render Text], printed). *)

val load_baseline : string -> Baseline.t option
(** Read a baseline file; [None] when the path does not exist. *)

val has_errors : Diagnostic.t list -> bool
(** True when any finding has [Error] severity — the CI gate. *)
