(** Per-function effect inference with fixpoint propagation over the
    call graph — the facts behind R9/R10/R11.

    All fixpoints iterate the graph's sorted node list, so the results
    (and therefore diagnostic order) are independent of discovery
    order. *)

val reaches_checkpoint : Callgraph.t -> Callgraph.fn_id -> bool
(** Least fixpoint: a node reaches a checkpoint when it calls
    [Deadline.checkpoint] directly or some internal callee does. *)

val guarded : Callgraph.t -> hot:Callgraph.fn list -> Callgraph.fn_id -> bool
(** Greatest fixpoint over the hot set: a node stays guarded while it
    reaches a checkpoint itself, or while every hot caller of it is
    still guarded (a caller that checkpoints around its calls bounds
    the work its callees do between checkpoints).  A node that neither
    reaches a checkpoint nor has any guarded hot caller is unguarded —
    R9 flags it if it loops. *)

val per_window : Callgraph.t -> score:Callgraph.fn list -> Callgraph.fn_id -> bool
(** Nodes that run once per scored window: the closure over internal
    callees of the in-loop call sites of the score set.  Any
    allocation inside such a node is a per-window allocation (R11). *)

val raisable : hot:Callgraph.fn list -> (string * (string * int * int)) list
(** Exception constructors raisable anywhere in the hot set, sorted by
    name, each with its lexicographically first example site
    (path, line, col) — the input to the R10 custody check. *)
