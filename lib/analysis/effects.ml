let key (id : Callgraph.fn_id) =
  (id.Callgraph.unit_name, id.Callgraph.fn_name)

(* Only applied calls ([args >= 1]) count as edges here: a bare
   reference — most often a punned record field that happens to share
   a top-level binding's name — reads a value, it does not run the
   function, and following it would drag module-init constants into
   the per-window set. *)
let internal_callees (fn : Callgraph.fn) =
  List.filter_map
    (fun (s : Callgraph.site) ->
      match s.Callgraph.target with
      | Callgraph.Internal id when s.Callgraph.args >= 1 -> Some id
      | Callgraph.Internal _ | Callgraph.External _ -> None)
    fn.Callgraph.sites

let reaches_checkpoint g =
  let reaches = Hashtbl.create 64 in
  List.iter
    (fun (fn : Callgraph.fn) ->
      let id = fn.Callgraph.id in
      if
        fn.Callgraph.checkpoints
        || (id.Callgraph.unit_name = "Deadline"
           && id.Callgraph.fn_name = "checkpoint")
      then Hashtbl.replace reaches (key id) ())
    (Callgraph.fns g);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fn : Callgraph.fn) ->
        if not (Hashtbl.mem reaches (key fn.Callgraph.id)) then
          if
            List.exists
              (fun id -> Hashtbl.mem reaches (key id))
              (internal_callees fn)
          then begin
            Hashtbl.replace reaches (key fn.Callgraph.id) ();
            changed := true
          end)
      (Callgraph.fns g)
  done;
  fun id -> Hashtbl.mem reaches (key id)

let guarded g ~hot =
  let reaches = reaches_checkpoint g in
  let hot_keys = List.map (fun (f : Callgraph.fn) -> key f.Callgraph.id) hot in
  (* Hot predecessors of each hot node. *)
  let preds_of (f : Callgraph.fn) =
    List.filter
      (fun (p : Callgraph.fn) ->
        List.exists
          (fun id -> key id = key f.Callgraph.id)
          (internal_callees p))
      hot
  in
  let in_g = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace in_g k true) hot_keys;
  let member (f : Callgraph.fn) =
    match Hashtbl.find_opt in_g (key f.Callgraph.id) with
    | Some b -> b
    | None -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Callgraph.fn) ->
        if member f && not (reaches f.Callgraph.id) then begin
          let preds = preds_of f in
          let unguarded_pred = List.exists (fun p -> not (member p)) preds in
          if preds = [] || unguarded_pred then begin
            Hashtbl.replace in_g (key f.Callgraph.id) false;
            changed := true
          end
        end)
      hot
  done;
  fun id ->
    match Hashtbl.find_opt in_g (key id) with Some b -> b | None -> false

let per_window g ~score =
  let marked = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem marked (key id)) then begin
      Hashtbl.add marked (key id) ();
      match Callgraph.find g id with
      | None -> ()
      | Some fn -> List.iter visit (internal_callees fn)
    end
  in
  List.iter
    (fun (fn : Callgraph.fn) ->
      List.iter
        (fun (s : Callgraph.site) ->
          match s.Callgraph.target with
          | Callgraph.Internal id
            when s.Callgraph.in_loop && s.Callgraph.args >= 1 ->
              visit id
          | Callgraph.Internal _ | Callgraph.External _ -> ())
        fn.Callgraph.sites)
    score;
  fun id -> Hashtbl.mem marked (key id)

let raisable ~hot =
  let all =
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        List.map
          (fun (r : Callgraph.raised) ->
            let p = r.Callgraph.raise_loc.Location.loc_start in
            ( r.Callgraph.exn_name,
              ( fn.Callgraph.path,
                p.Lexing.pos_lnum,
                p.Lexing.pos_cnum - p.Lexing.pos_bol ) ))
          fn.Callgraph.raises)
      hot
  in
  let sorted = List.sort compare all in
  let rec first_of_each = function
    | [] -> []
    | (exn, site) :: rest ->
        let rest' =
          List.filter (fun (e, _) -> e <> exn) rest
        in
        (exn, site) :: first_of_each rest'
  in
  first_of_each sorted
