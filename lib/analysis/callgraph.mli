(** A whole-program call graph over the linted [.ml] files.

    Each top-level value binding becomes one node carrying the local
    facts the whole-program rules need: its call sites (resolved to
    internal nodes or external paths), syntactic allocations, raisable
    exception constructors, whether its body loops, and whether it
    calls [Deadline.checkpoint] directly.

    Resolution is purely syntactic — names, not types.  A single
    identifier resolves to the current unit when it names a top-level
    binding there; a qualified path resolves to the last path element
    that names a known compilation unit.  First-class-module dispatch
    (the registry's packed detectors) is invisible, which is why the
    reachability roots in [Reach] name detector entry points
    explicitly. *)

type fn_id = { unit_name : string; fn_name : string }

type target =
  | Internal of fn_id  (** A top-level binding of a linted unit. *)
  | External of string list  (** Stdlib-stripped path of anything else. *)

type site = {
  target : target;
  args : int;  (** Applied argument count; 0 for a bare reference. *)
  in_loop : bool;
      (** Inside a for/while body, a recursive binding's body, or a
          lambda passed to an iteration combinator. *)
  site_loc : Location.t;
}

type alloc_kind = Closure | Ref | Tuple | Array_literal | Append

type alloc = {
  kind : alloc_kind;
  alloc_in_loop : bool;
  alloc_loc : Location.t;
}

type raised = { exn_name : string; raise_loc : Location.t }

type fn = {
  id : fn_id;
  path : string;  (** Source path of the defining file. *)
  line : int;
  col : int;
  arity : int;  (** Number of syntactic parameters. *)
  has_optional : bool;  (** Any labelled/optional parameter. *)
  has_loop : bool;
      (** for/while, or a [let rec] (top-level or nested) — the
          shapes that can run unboundedly without a checkpoint. *)
  checkpoints : bool;  (** Calls [Deadline.checkpoint] directly. *)
  sites : site list;
  allocs : alloc list;
  raises : raised list;
}

type t

val build : (Source.t * Parsetree.structure) list -> t
(** Build the graph from all parsed library implementations.  When a
    unit binds the same name twice, the later (shadowing) binding
    wins.  Nodes come out sorted by (unit, name). *)

val fns : t -> fn list
(** All nodes, sorted by (unit, name) — the deterministic iteration
    order for every fixpoint. *)

val find : t -> fn_id -> fn option
