(** A single linter finding.

    Diagnostics are plain data so that rules stay decoupled from
    reporting: the engine produces a sorted list, and the front end
    ([Lint], the [seqdiv-lint] executable, or the test suite) decides
    how to render it and whether the run fails. *)

type severity = Warning | Error

type t = {
  rule : string;  (** Rule identifier, e.g. ["R1"]. *)
  rule_name : string;  (** Human name, e.g. ["determinism"]. *)
  severity : severity;
  file : string;  (** Path as given to the linter. *)
  line : int;  (** 1-based line of the offending construct. *)
  col : int;  (** 0-based column, compiler convention. *)
  message : string;
}

val make :
  rule:string ->
  rule_name:string ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

val compare : t -> t -> int
(** Order by file, then position, then rule — the stable reporting
    order. *)

val is_error : t -> bool

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity [rule rule-name] message] — one line,
    recognisable to editors that parse compiler output. *)

val to_string : t -> string
