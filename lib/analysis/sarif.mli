(** Machine-readable renderings of a diagnostic list.

    [render] produces a SARIF 2.1.0 log (one run, driver
    [seqdiv-lint], rule metadata from {!Rules.all}); [render_json] a
    plain JSON array of diagnostic objects.  Both are rendered by
    hand — no JSON library in the toolchain — with deterministic field
    order, so equal inputs give byte-equal output. *)

val render : Diagnostic.t list -> string
(** SARIF 2.1.0 document, trailing newline included. *)

val render_json : Diagnostic.t list -> string
(** Plain JSON array of [{rule, name, severity, file, line, col,
    message}], trailing newline included. *)
