open Seqdiv_stream
open Seqdiv_util

type params = {
  hidden : int;
  epochs : int;
  learning_rate : float;
  momentum : float;
  seed : int;
}

let default_params =
  { hidden = 24; epochs = 400; learning_rate = 0.5; momentum = 0.9; seed = 42 }

type model = {
  window : int;
  k : int;
  params : params;
  w1 : Matrix.t;  (* hidden × input *)
  b1 : float array;
  w2 : Matrix.t;  (* output × hidden *)
  b2 : float array;
  loss : float;
}

let name = "nn"

(* A softmax never reaches an exact zero; with the default training
   schedule the probability assigned to a continuation never (or very
   rarely) seen in training falls well below this bound, while common
   continuations stay close to 1. *)
let maximal_epsilon = 1e-2

let train_of_trie = None
let compile = None
let window m = m.window
let params m = m.params
let training_loss m = m.loss

let one_hot ~k ~ctx_len symbols =
  let x = Array.make (ctx_len * k) 0.0 in
  Array.iteri (fun i s -> x.((i * k) + s) <- 1.0) symbols;
  x

let softmax logits =
  let m = Array.fold_left Float.max neg_infinity logits in
  let exps = Array.map (fun v -> exp (v -. m)) logits in
  let z = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> e /. z) exps

let forward m x =
  let h = Matrix.mul_vec m.w1 x in
  Array.iteri (fun i v -> h.(i) <- tanh (v +. m.b1.(i))) h;
  let o = Matrix.mul_vec m.w2 h in
  Array.iteri (fun i v -> o.(i) <- v +. m.b2.(i)) o;
  (h, softmax o)

(* Distinct (context, next) pairs of the training stream with weights
   proportional to their counts; training on these is equivalent to
   training on the raw stream but far cheaper on repetitive data. *)
let gather_pairs ~window trace =
  let ctx_len = window - 1 in
  let table = Hashtbl.create 256 in
  Trace.iter_windows trace ~width:window (fun pos ->
      let ctx = Trace.key trace ~pos ~len:ctx_len in
      let next = Trace.get trace (pos + ctx_len) in
      let key = (ctx, next) in
      let prev = Option.value (Hashtbl.find_opt table key) ~default:0 in
      Hashtbl.replace table key (prev + 1));
  let total =
    (* lint: allow determinism — integer sum is order-insensitive *)
    float_of_int (Hashtbl.fold (fun _ c acc -> acc + c) table 0)
  in
  (* lint: allow determinism — collection order is erased by the sort *)
  Hashtbl.fold
    (fun (ctx, next) c acc ->
      (Trace.symbols_of_key ctx, next, float_of_int c /. total) :: acc)
    table []
  |> List.sort compare

let train_with p ~window trace =
  assert (window >= 2);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Neural.train: trace shorter than window";
  assert (p.hidden > 0 && p.epochs >= 0);
  let k = Alphabet.size (Trace.alphabet trace) in
  let ctx_len = window - 1 in
  let input = ctx_len * k in
  let rng = Prng.create ~seed:p.seed in
  let m =
    {
      window;
      k;
      params = p;
      w1 = Matrix.random rng ~rows:p.hidden ~cols:input ~scale:0.5;
      b1 = Array.make p.hidden 0.0;
      w2 = Matrix.random rng ~rows:k ~cols:p.hidden ~scale:0.5;
      b2 = Array.make k 0.0;
      loss = 0.0;
    }
  in
  let pairs =
    gather_pairs ~window trace
    |> List.map (fun (ctx, next, w) -> (one_hot ~k ~ctx_len ctx, next, w))
  in
  (* Momentum buffers. *)
  let vw1 = Matrix.create ~rows:p.hidden ~cols:input in
  let vb1 = Array.make p.hidden 0.0 in
  let vw2 = Matrix.create ~rows:k ~cols:p.hidden in
  let vb2 = Array.make k 0.0 in
  let gw1 = Matrix.create ~rows:p.hidden ~cols:input in
  let gb1 = Array.make p.hidden 0.0 in
  let gw2 = Matrix.create ~rows:k ~cols:p.hidden in
  let gb2 = Array.make k 0.0 in
  let last_loss = ref 0.0 in
  for _epoch = 1 to p.epochs do
    Deadline.checkpoint ();
    Matrix.scale_in_place gw1 0.0;
    Matrix.scale_in_place gw2 0.0;
    Array.fill gb1 0 p.hidden 0.0;
    Array.fill gb2 0 k 0.0;
    let loss = ref 0.0 in
    List.iter
      (fun (x, next, weight) ->
        let h, probs = forward m x in
        loss := !loss -. (weight *. log (Float.max probs.(next) 1e-300));
        (* Output delta of softmax + cross-entropy: p - onehot(target). *)
        let delta_o =
          Array.mapi
            (fun j pj -> weight *. (pj -. if j = next then 1.0 else 0.0))
            probs
        in
        Matrix.add_outer gw2 delta_o h ~scale:1.0;
        Array.iteri (fun j d -> gb2.(j) <- gb2.(j) +. d) delta_o;
        let back = Matrix.tmul_vec m.w2 delta_o in
        let delta_h =
          Array.mapi (fun i b -> b *. (1.0 -. (h.(i) *. h.(i)))) back
        in
        Matrix.add_outer gw1 delta_h x ~scale:1.0;
        Array.iteri (fun i d -> gb1.(i) <- gb1.(i) +. d) delta_h)
      pairs;
    last_loss := !loss;
    (* Momentum step: v <- mu v - lr g;  w <- w + v. *)
    let step vmat gmat wmat =
      Matrix.scale_in_place vmat p.momentum;
      Matrix.add_in_place vmat (Matrix.map (fun g -> -.p.learning_rate *. g) gmat);
      Matrix.add_in_place wmat vmat
    in
    step vw1 gw1 m.w1;
    step vw2 gw2 m.w2;
    let step_vec v g w =
      Array.iteri
        (fun i _ ->
          v.(i) <- (p.momentum *. v.(i)) -. (p.learning_rate *. g.(i));
          w.(i) <- w.(i) +. v.(i))
        v
    in
    step_vec vb1 gb1 m.b1;
    step_vec vb2 gb2 m.b2
  done;
  { m with loss = !last_loss }

let train ~window trace = train_with default_params ~window trace

let predict m context =
  assert (Array.length context = m.window - 1);
  let x = one_hot ~k:m.k ~ctx_len:(m.window - 1) context in
  snd (forward m x)

(* Allocation-free scoring core (lint R11): [score_range] preallocates
   the input, hidden and output vectors once and replays the float
   operations of [one_hot]/[forward]/[softmax] in the exact same
   order, so scores are bit-identical to the allocating functions
   above — which remain the reference implementation for training and
   [predict].  Loop state lives in parameters or destination cells: a
   ref accumulator would itself allocate per window. *)

(* Maximum of [v.(0..n-1)], ascending — matches
   [Array.fold_left Float.max neg_infinity]. *)
let rec vec_max_from v n i acc =
  if i >= n then acc else vec_max_from v n (i + 1) (Float.max acc v.(i))

(* Sum of [v.(0..n-1)], ascending — matches [Array.fold_left (+.)]. *)
let rec vec_sum_from v n i acc =
  if i >= n then acc else vec_sum_from v n (i + 1) (acc +. v.(i))

(* [forward] followed by [softmax], writing the hidden activations
   into [h] and the continuation distribution into [o]. *)
let forward_into m x h o =
  Matrix.mul_vec_into m.w1 x h;
  for i = 0 to Array.length h - 1 do
    h.(i) <- tanh (h.(i) +. m.b1.(i))
  done;
  Matrix.mul_vec_into m.w2 h o;
  let n = Array.length o in
  for i = 0 to n - 1 do
    o.(i) <- o.(i) +. m.b2.(i)
  done;
  let mx = vec_max_from o n 0 neg_infinity in
  for i = 0 to n - 1 do
    o.(i) <- exp (o.(i) -. mx)
  done;
  let z = vec_sum_from o n 0 0.0 in
  for i = 0 to n - 1 do
    o.(i) <- o.(i) /. z
  done

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  let ctx_len = m.window - 1 in
  let x = Array.make (ctx_len * m.k) 0.0 in
  let h = Array.make (Matrix.rows m.w1) 0.0 in
  let o = Array.make m.k 0.0 in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let items =
    Array.init n (fun i ->
        if i land 255 = 0 then Deadline.checkpoint ();
        let start = lo + i in
        Array.fill x 0 (ctx_len * m.k) 0.0;
        for j = 0 to ctx_len - 1 do
          x.((j * m.k) + Trace.get trace (start + j)) <- 1.0
        done;
        forward_into m x h o;
        let next = Trace.get trace (start + ctx_len) in
        let score = Float.max 0.0 (1.0 -. o.(next)) in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi
