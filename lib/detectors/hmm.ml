open Seqdiv_stream
open Seqdiv_util

type params = {
  states : int;
  iterations : int;
  train_limit : int;
  seed : int;
}

let default_params = { states = 0; iterations = 12; train_limit = 20_000; seed = 17 }

type model = {
  window : int;
  k : int;  (* alphabet size *)
  params : params;
  pi : float array;  (* initial state distribution *)
  a : float array array;  (* state transitions, S x S *)
  b : float array array;  (* emissions, S x k *)
}

let name = "hmm"

(* Baum-Welch probabilities are smoothed estimates, never exact zeros;
   like the neural detector, a continuation estimated below 1% counts as
   maximally anomalous. *)
let maximal_epsilon = 0.01

let train_of_trie = None
let compile = None
let window m = m.window
let params m = m.params

let normalise row =
  let total = Array.fold_left ( +. ) 0.0 row in
  assert (total > 0.0);
  Array.map (fun x -> x /. total) row

let random_stochastic rng ~rows ~cols =
  Array.init rows (fun _ ->
      normalise (Array.init cols (fun _ -> 0.2 +. Prng.float rng 1.0)))

(* One scaled forward pass; returns (alphas, scales).  alphas.(t) is the
   normalised state distribution after observing obs.(0..t). *)
let forward m obs =
  let t_len = Array.length obs in
  let s_len = Array.length m.pi in
  let alphas = Array.make_matrix t_len s_len 0.0 in
  let scales = Array.make t_len 0.0 in
  for t = 0 to t_len - 1 do
    let unscaled =
      Array.init s_len (fun s ->
          let inbound =
            if t = 0 then m.pi.(s)
            else begin
              let acc = ref 0.0 in
              for s' = 0 to s_len - 1 do
                acc := !acc +. (alphas.(t - 1).(s') *. m.a.(s').(s))
              done;
              !acc
            end
          in
          inbound *. m.b.(s).(obs.(t)))
    in
    let scale = Array.fold_left ( +. ) 0.0 unscaled in
    let scale = if scale <= 0.0 then epsilon_float else scale in
    scales.(t) <- scale;
    for s = 0 to s_len - 1 do
      alphas.(t).(s) <- unscaled.(s) /. scale
    done
  done;
  (alphas, scales)

let backward m obs scales =
  let t_len = Array.length obs in
  let s_len = Array.length m.pi in
  let betas = Array.make_matrix t_len s_len 0.0 in
  for s = 0 to s_len - 1 do
    betas.(t_len - 1).(s) <- 1.0
  done;
  for t = t_len - 2 downto 0 do
    for s = 0 to s_len - 1 do
      let acc = ref 0.0 in
      for s' = 0 to s_len - 1 do
        acc :=
          !acc
          +. (m.a.(s).(s') *. m.b.(s').(obs.(t + 1)) *. betas.(t + 1).(s'))
      done;
      betas.(t).(s) <- !acc /. scales.(t + 1)
    done
  done;
  betas

(* One EM (Baum-Welch) re-estimation step. *)
let baum_welch_step m obs =
  let t_len = Array.length obs in
  let s_len = Array.length m.pi in
  let alphas, scales = forward m obs in
  let betas = backward m obs scales in
  let gamma t s = alphas.(t).(s) *. betas.(t).(s) in
  let new_pi = Array.init s_len (fun s -> Float.max epsilon_float (gamma 0 s)) in
  let new_a = Array.make_matrix s_len s_len epsilon_float in
  for t = 0 to t_len - 2 do
    for s = 0 to s_len - 1 do
      let base = alphas.(t).(s) in
      if base > 0.0 then
        for s' = 0 to s_len - 1 do
          new_a.(s).(s') <-
            new_a.(s).(s')
            +. base *. m.a.(s).(s')
               *. m.b.(s').(obs.(t + 1))
               *. betas.(t + 1).(s')
               /. scales.(t + 1)
        done
    done
  done;
  let new_b = Array.make_matrix s_len m.k epsilon_float in
  for t = 0 to t_len - 1 do
    for s = 0 to s_len - 1 do
      new_b.(s).(obs.(t)) <- new_b.(s).(obs.(t)) +. gamma t s
    done
  done;
  {
    m with
    pi = normalise new_pi;
    a = Array.map normalise new_a;
    b = Array.map normalise new_b;
  }

let train_with p ~window trace =
  assert (window >= 2);
  assert (p.iterations >= 0 && p.train_limit >= 2);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Hmm.train: trace shorter than window";
  let k = Alphabet.size (Trace.alphabet trace) in
  let states = if p.states = 0 then k else p.states in
  assert (states >= 1);
  let resolved = { p with states } in
  let rng = Prng.create ~seed:p.seed in
  let obs =
    Trace.to_array
      (Trace.sub trace ~pos:0
         ~len:(Stdlib.min (Trace.length trace) p.train_limit))
  in
  let initial =
    {
      window;
      k;
      params = resolved;
      pi = normalise (Array.init states (fun _ -> 0.5 +. Prng.float rng 1.0));
      a = random_stochastic rng ~rows:states ~cols:states;
      b = random_stochastic rng ~rows:states ~cols:k;
    }
  in
  let rec iterate m n =
    Deadline.checkpoint ();
    if n = 0 then m else iterate (baum_welch_step m obs) (n - 1)
  in
  iterate initial p.iterations

let train ~window trace = train_with default_params ~window trace

let log_likelihood m trace =
  let _, scales = forward m (Trace.to_array trace) in
  Array.fold_left (fun acc s -> acc +. log s) 0.0 scales

let state_distribution m context =
  let s_len = Array.length m.pi in
  if Array.length context = 0 then Array.copy m.pi
  else begin
    let alphas, _ = forward m context in
    Array.init s_len (fun s -> alphas.(Array.length context - 1).(s))
  end

let predict m context =
  let s_len = Array.length m.pi in
  let alpha = state_distribution m context in
  let filtered_through_transition =
    if Array.length context = 0 then alpha
    else begin
      let out = Array.make s_len 0.0 in
      for s = 0 to s_len - 1 do
        for s' = 0 to s_len - 1 do
          out.(s') <- out.(s') +. (alpha.(s) *. m.a.(s).(s'))
        done
      done;
      out
    end
  in
  let probs = Array.make m.k 0.0 in
  for s = 0 to s_len - 1 do
    for o = 0 to m.k - 1 do
      probs.(o) <- probs.(o) +. (filtered_through_transition.(s) *. m.b.(s).(o))
    done
  done;
  probs

(* Allocation-free per-window scoring core (lint R11): [score_range]
   preallocates the state rows once and replays the float operations
   of [forward]/[state_distribution]/[predict] in the exact same
   order, so scores are bit-identical to the allocating functions
   above — which remain the reference implementation for training,
   [log_likelihood] and the tests.  All loop state lives in
   parameters: a ref accumulator would itself allocate per window. *)

(* Sum of [row.(0..n-1)], ascending — matches [Array.fold_left (+.)]. *)
let rec row_sum row n i acc =
  if i >= n then acc else row_sum row n (i + 1) (acc +. row.(i))

(* Inbound mass for state [s]: the previous alpha row through column
   [s] of the transition matrix, ascending [s'] — matches the ref
   loop in [forward]. *)
let rec inbound_from prev a s s_len s' acc =
  if s' >= s_len then acc
  else inbound_from prev a s s_len (s' + 1) (acc +. (prev.(s') *. a.(s').(s)))

(* One scaled forward step into [cur] ([t = 0] starts from [pi]). *)
let forward_step m obs t prev cur =
  let s_len = Array.length m.pi in
  for s = 0 to s_len - 1 do
    let inbound =
      if t = 0 then m.pi.(s) else inbound_from prev m.a s s_len 0 0.0
    in
    cur.(s) <- inbound *. m.b.(s).(obs.(t))
  done;
  let scale = row_sum cur s_len 0 0.0 in
  let scale = if scale <= 0.0 then epsilon_float else scale in
  for s = 0 to s_len - 1 do
    cur.(s) <- cur.(s) /. scale
  done

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  (* [train]/[train_with] assert [window >= 2], so every scored window
     carries a non-empty context. *)
  let ctx_len = m.window - 1 in
  let s_len = Array.length m.pi in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let ctx = Array.make ctx_len 0 in
  let alpha = Array.make s_len 0.0 in
  let alpha' = Array.make s_len 0.0 in
  let filtered = Array.make s_len 0.0 in
  let probs = Array.make m.k 0.0 in
  let items =
    Array.init n (fun i ->
        if i land 255 = 0 then Deadline.checkpoint ();
        let start = lo + i in
        for j = 0 to ctx_len - 1 do
          ctx.(j) <- Trace.get trace (start + j)
        done;
        for t = 0 to ctx_len - 1 do
          forward_step m ctx t alpha alpha';
          Array.blit alpha' 0 alpha 0 s_len
        done;
        Array.fill filtered 0 s_len 0.0;
        for s = 0 to s_len - 1 do
          for s' = 0 to s_len - 1 do
            filtered.(s') <- filtered.(s') +. (alpha.(s) *. m.a.(s).(s'))
          done
        done;
        Array.fill probs 0 m.k 0.0;
        for s = 0 to s_len - 1 do
          for o = 0 to m.k - 1 do
            probs.(o) <- probs.(o) +. (filtered.(s) *. m.b.(s).(o))
          done
        done;
        let next = Trace.get trace (start + ctx_len) in
        let score = Float.max 0.0 (Float.min 1.0 (1.0 -. probs.(next))) in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi
