open Seqdiv_stream

type model = { window : int; db : Seq_db.t }

let name = "stide"
let maximal_epsilon = 0.0

let train ~window trace =
  assert (window >= 2);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Stide.train: trace shorter than window";
  { window; db = Seq_db.of_trace ~width:window trace }

let of_trie trie ~window =
  assert (window >= 2);
  { window; db = Seq_db.of_trie trie ~width:window }

let train_of_trie = Some of_trie
let window m = m.window
let db m = m.db
let train_of_db db = { window = Seq_db.width db; db }

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  let data = Trace.raw trace in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let items =
    Array.init n (fun i ->
        if i land 1023 = 0 then Seqdiv_util.Deadline.checkpoint ();
        let start = lo + i in
        let score = if Seq_db.mem_at m.db data ~pos:start then 0.0 else 1.0 in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi

(* Compiled form: a full-depth state is a recorded window (score 0),
   anything shallower is foreign (score 1) — exactly [mem_at]. *)
let compile_model ?automaton m =
  let auto =
    Detector.obtain_automaton ?automaton (Seq_db.trie m.db) ~window:m.window
  in
  Some
    (Flat_automaton.make_scorer auto ~score:(fun s ->
         if Flat_automaton.state_depth auto s = m.window then 0.0 else 1.0))

let compile = Some compile_model
