(** t-stide — stide with a frequency threshold (Warrender, Forrest &
    Pearlmutter 1999).

    The paper contrasts detectors that can respond to {e rare} sequences
    (Markov, NN) with those that cannot (Stide, L&B), and notes that the
    literature "remains ambiguous about the alarm-worthiness of rare
    sequences" (Section 5.1).  t-stide is the canonical rare-sensitive
    variant of Stide from the same lineage: a test window is anomalous
    when it is foreign {e or} its relative frequency in the training
    data falls below a threshold.  It is included as an extension
    (experiment E1): its coverage patches exactly the blind triangle of
    Stide's map, landing on the Markov detector's coverage — with the
    same rare-sequence false-alarm exposure.

    Not part of the paper's four studied detectors; see
    {!Registry.extended}. *)

open Seqdiv_stream

val default_threshold : float
(** 0.005 — the paper's rare-sequence definition. *)

include Detector.S

val train_with : threshold:float -> window:int -> Trace.t -> model
(** {!train} with an explicit rarity threshold. *)

val threshold : model -> float
(** The rarity threshold of a trained model. *)

val db : model -> Seq_db.t
(** The underlying sequence database. *)

val of_trie : Seq_trie.t -> window:int -> model
(** Model (at {!default_threshold}) viewing the [window]-slice of a
    shared trie — what {!Detector.S.train_of_trie} exposes to the
    engine.  Requires [2 <= window <= Seq_trie.max_len trie]. *)
