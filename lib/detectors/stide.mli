(** Stide — sequence time-delay embedding (Forrest et al. 1996;
    Warrender et al. 1999).

    The similarity metric is exact matching: a test window scores 0 when
    an identical window exists in the normal database and 1 otherwise
    (Section 5.2).  No frequencies or probabilities are involved, which
    is why Stide is blind to rare-but-seen sequences and detects a
    minimal foreign sequence only when the detector window is at least
    as long as the anomaly. *)

open Seqdiv_stream

include Detector.S

val db : model -> Seq_db.t
(** The normal database backing a trained model (distinct
    window-sequences with their training counts). *)

val train_of_db : Seq_db.t -> model
(** Wrap an existing database as a model — used to share one database
    between Stide and the L&B detector in ablations. *)

val of_trie : Seq_trie.t -> window:int -> model
(** Model viewing the [window]-slice of a shared trie — what
    {!Detector.S.train_of_trie} exposes to the engine.  Requires
    [2 <= window <= Seq_trie.max_len trie]. *)
