let all : Detector.t list =
  [ (module Markov); (module Lane_brodley); (module Neural); (module Stide) ]

let extended : Detector.t list = all @ [ (module Tstide); (module Hmm) ]

let names = List.map (fun (module D : Detector.S) -> D.name) extended

let find name =
  List.find_opt (fun (module D : Detector.S) -> D.name = name) extended

let find_exn name =
  match find name with
  | Some d -> d
  | None ->
      (* lint: allow partiality — documented precondition *)
      invalid_arg
        (Printf.sprintf "unknown detector %S (expected one of: %s)" name
           (String.concat ", " names))
