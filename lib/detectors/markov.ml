open Seqdiv_stream

type stats = { counts : int array; mutable total : int }

type model = {
  window : int;
  k : int;  (* alphabet size *)
  table : (string, stats) Hashtbl.t;
  smoothing : float;  (* Laplace constant; 0 = maximum likelihood *)
}

let name = "markov"

(* A continuation that was never observed scores exactly 1.  An observed
   continuation is treated as maximally anomalous when its estimated
   probability falls below the paper's rare-sequence threshold (0.5 %,
   Section 5.3) — this is precisely the sense in which the paper says the
   Markov detector "will detect foreign sequences as well as a variety of
   rare sequences" while Stide detects only foreign ones. *)
let maximal_epsilon = 0.005

let train ~window trace =
  assert (window >= 2);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Markov.train: trace shorter than window";
  let k = Alphabet.size (Trace.alphabet trace) in
  let table = Hashtbl.create 256 in
  let ctx_len = window - 1 in
  Trace.iter_windows trace ~width:window (fun pos ->
      let ctx = Trace.key trace ~pos ~len:ctx_len in
      let next = Trace.get trace (pos + ctx_len) in
      let stats =
        match Hashtbl.find_opt table ctx with
        | Some s -> s
        | None ->
            let s = { counts = Array.make k 0; total = 0 } in
            Hashtbl.add table ctx s;
            s
      in
      stats.counts.(next) <- stats.counts.(next) + 1;
      stats.total <- stats.total + 1);
  { window; k; table; smoothing = 0.0 }

let with_smoothing m ~alpha =
  assert (alpha >= 0.0);
  { m with smoothing = alpha }

let smoothing m = m.smoothing

let window m = m.window
let context_length m = m.window - 1
let contexts m = Hashtbl.length m.table

let fold_contexts m ~init ~f =
  (* lint: allow determinism — collection order is erased by the sort *)
  Hashtbl.fold (fun context stats acc -> (context, stats) :: acc) m.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.fold_left
       (fun acc (context, stats) ->
         f acc ~context ~counts:(Array.copy stats.counts))
       init

let of_context_counts ~window ~alphabet_size entries =
  assert (window >= 2 && alphabet_size >= 1);
  let table = Hashtbl.create (List.length entries) in
  List.iter
    (fun (context, counts) ->
      if String.length context <> window - 1 then
        (* lint: allow partiality — documented precondition *)
        invalid_arg "Markov.of_context_counts: context length";
      if Array.length counts <> alphabet_size then
        (* lint: allow partiality — documented precondition *)
        invalid_arg "Markov.of_context_counts: counts length";
      let total = Array.fold_left ( + ) 0 counts in
      (* lint: allow partiality — documented precondition *)
      if total <= 0 then invalid_arg "Markov.of_context_counts: empty context";
      Hashtbl.replace table context { counts = Array.copy counts; total })
    entries;
  { window; k = alphabet_size; table; smoothing = 0.0 }

let probability_key m ctx next =
  let alpha = m.smoothing in
  match Hashtbl.find_opt m.table ctx with
  | None -> if alpha > 0.0 then 1.0 /. float_of_int m.k else 0.0
  | Some s ->
      if s.total = 0 then 0.0
      else
        (float_of_int s.counts.(next) +. alpha)
        /. (float_of_int s.total +. (alpha *. float_of_int m.k))

let probability m ~context ~next =
  assert (Array.length context = context_length m);
  assert (next >= 0 && next < m.k);
  probability_key m (Trace.key_of_symbols context) next

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  let ctx_len = context_length m in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let items =
    Array.init n (fun i ->
        let start = lo + i in
        let ctx = Trace.key trace ~pos:start ~len:ctx_len in
        let next = Trace.get trace (start + ctx_len) in
        let score = 1.0 -. probability_key m ctx next in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi
