open Seqdiv_stream

type model = {
  window : int;
  k : int;  (* alphabet size: the uniform-prediction denominator *)
  trie : Seq_trie.t;  (* indexes the training trace >= window deep *)
  smoothing : float;  (* Laplace constant; 0 = maximum likelihood *)
}

let name = "markov"

(* A continuation that was never observed scores exactly 1.  An observed
   continuation is treated as maximally anomalous when its estimated
   probability falls below the paper's rare-sequence threshold (0.5 %,
   Section 5.3) — this is precisely the sense in which the paper says the
   Markov detector "will detect foreign sequences as well as a variety of
   rare sequences" while Stide detects only foreign ones. *)
let maximal_epsilon = 0.005

(* The conditional-count table is the trie itself: a context is the
   depth-(window-1) node on its symbol path, the denominator is that
   node's continuation total and each numerator is a child count.  A
   context that only ever occurred at the very end of the training trace
   never continued, so its continuation total is 0 — [Seq_trie.context_at]
   reports such contexts as absent, exactly like the window-sliding
   hashtable build that never saw them. *)

let train ~window trace =
  assert (window >= 2);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Markov.train: trace shorter than window";
  let k = Alphabet.size (Trace.alphabet trace) in
  { window; k; trie = Seq_trie.of_trace ~max_len:window trace; smoothing = 0.0 }

let of_trie trie ~window =
  assert (window >= 2);
  assert (window <= Seq_trie.max_len trie);
  { window; k = Seq_trie.alphabet_size trie; trie; smoothing = 0.0 }

let train_of_trie = Some of_trie

let with_smoothing m ~alpha =
  assert (alpha >= 0.0);
  { m with smoothing = alpha }

let smoothing m = m.smoothing

let window m = m.window
let context_length m = m.window - 1

let contexts m =
  let n = ref 0 in
  Seq_trie.iter_contexts m.trie ~depth:(context_length m) (fun _ _ -> incr n);
  !n

let fold_contexts m ~init ~f =
  let acc = ref init in
  Seq_trie.iter_contexts m.trie ~depth:(context_length m) (fun buf node ->
      let counts =
        Array.init m.k (fun s -> Seq_trie.continuation_count m.trie node s)
      in
      acc := f !acc ~context:(Trace.key_of_symbols buf) ~counts);
  !acc

let of_context_counts ~window ~alphabet_size entries =
  assert (window >= 2 && alphabet_size >= 1);
  (* Context keys may carry symbols beyond the nominal alphabet (they
     are arbitrary bytes in a serialised model); widen the trie to admit
     them while keeping [k] — the smoothing denominator — as given. *)
  let trie_k =
    List.fold_left
      (fun acc (context, _) ->
        String.fold_left
          (fun acc c -> Stdlib.max acc (Char.code c + 1))
          acc context)
      alphabet_size entries
  in
  let trie = Seq_trie.create ~alphabet_size:trie_k ~max_len:window in
  let buf = Array.make window 0 in
  List.iter
    (fun (context, counts) ->
      if String.length context <> window - 1 then
        (* lint: allow partiality — documented precondition *)
        invalid_arg "Markov.of_context_counts: context length";
      if Array.length counts <> alphabet_size then
        (* lint: allow partiality — documented precondition *)
        invalid_arg "Markov.of_context_counts: counts length";
      let total = Array.fold_left ( + ) 0 counts in
      (* lint: allow partiality — documented precondition *)
      if total <= 0 then invalid_arg "Markov.of_context_counts: empty context";
      String.iteri (fun i c -> buf.(i) <- Char.code c) context;
      Array.iteri
        (fun next count ->
          if count > 0 then begin
            buf.(window - 1) <- next;
            Seq_trie.add_many_at trie buf ~pos:0 ~len:window ~count
          end)
        counts)
    entries;
  { window; k = alphabet_size; trie; smoothing = 0.0 }

let probability_at m a ~pos ~next =
  let alpha = m.smoothing in
  match Seq_trie.context_at m.trie a ~pos ~len:(m.window - 1) with
  | None -> if alpha > 0.0 then 1.0 /. float_of_int m.k else 0.0
  | Some node ->
      let count =
        if next >= 0 && next < Seq_trie.alphabet_size m.trie then
          Seq_trie.continuation_count m.trie node next
        else 0
      in
      (float_of_int count +. alpha)
      /. (float_of_int (Seq_trie.context_total node) +. (alpha *. float_of_int m.k))

let probability m ~context ~next =
  assert (Array.length context = context_length m);
  assert (next >= 0 && next < m.k);
  probability_at m context ~pos:0 ~next

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  let data = Trace.raw trace in
  let ctx_len = context_length m in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let items =
    Array.init n (fun i ->
        if i land 1023 = 0 then Seqdiv_util.Deadline.checkpoint ();
        let start = lo + i in
        let next = data.(start + ctx_len) in
        let score = 1.0 -. probability_at m data ~pos:start ~next in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi

(* Compiled form (maximum likelihood only): a full-depth state's parent
   is exactly the window's context node, so the conditional probability
   is count(state) / ctotal(parent) — the [probability_at] expression
   with [alpha = 0], reproduced term for term ([x +. 0.0] and
   [0.0 *. k] are exact) so scores stay bit-identical.  Every shallower
   state means an unobserved continuation: probability 0, score 1.
   A smoothed model is not a per-state table over the trained trie
   (unobserved continuations of observed contexts score differently
   from unobserved contexts), so it declines to compile. *)
let compile_model ?automaton m =
  if m.smoothing > 0.0 then None
  else
    let auto = Detector.obtain_automaton ?automaton m.trie ~window:m.window in
    Some
      (Flat_automaton.make_scorer auto ~score:(fun s ->
           if Flat_automaton.state_depth auto s < m.window then 1.0
           else
             let count = Flat_automaton.state_count auto s in
             let ctotal =
               Flat_automaton.state_context_total auto
                 (Flat_automaton.state_parent auto s)
             in
             1.0 -. (float_of_int count /. float_of_int ctotal)))

let compile = Some compile_model
