open Seqdiv_stream

type model = {
  window : int;
  instances : int array array;  (* distinct training windows *)
}

let name = "lnb"
let maximal_epsilon = 0.0

(* Allocation-free core of [similarity]: all state lives in the
   parameters — a ref accumulator or a local [let rec] closure would
   allocate on every scored window (lint R11). *)
let rec similarity_from a b n i run total =
  if i >= n then total
  else if a.(i) = b.(i) then
    let run = run + 1 in
    similarity_from a b n (i + 1) run (total + run)
  else similarity_from a b n (i + 1) 0 total

let similarity a b =
  let n = Array.length a in
  (* lint: allow partiality — documented precondition *)
  if Array.length b <> n then invalid_arg "Lane_brodley.similarity: lengths";
  similarity_from a b n 0 0 0

let max_similarity dw = dw * (dw + 1) / 2

let train ~window trace =
  assert (window >= 2);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Lane_brodley.train: trace shorter than window";
  let db = Seq_db.of_trace ~width:window trace in
  let instances =
    Seq_db.keys db |> List.map Trace.symbols_of_key |> Array.of_list
  in
  { window; instances }

let train_of_trie = None
let compile = None
let window m = m.window
let instances m = Array.length m.instances

(* Best similarity over the instance db without the (instance, score)
   pair [best_match] returns: the scoring path only needs the scalar,
   and the tuple would be a per-window allocation (lint R11).
   Similarities are non-negative, so seeding the fold with 0 computes
   the same maximum as seeding with the first instance. *)
let rec best_sim_from instances w i best =
  if i >= Array.length instances then best
  else
    let s = similarity w instances.(i) in
    best_sim_from instances w (i + 1) (if s > best then s else best)

let best_match m w =
  assert (Array.length w = m.window);
  assert (Array.length m.instances > 0);
  let best = ref m.instances.(0) in
  let best_sim = ref (similarity w m.instances.(0)) in
  Array.iter
    (fun inst ->
      let s = similarity w inst in
      if s > !best_sim then begin
        best := inst;
        best_sim := s
      end)
    m.instances;
  (!best, !best_sim)

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  let sim_max = float_of_int (max_similarity m.window) in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let w = Array.make m.window 0 in
  let items =
    Array.init n (fun i ->
        (* Every window here scans the whole instance db ([best_match]),
           so checkpoint more often than the cheap per-window paths. *)
        if i land 255 = 0 then Seqdiv_util.Deadline.checkpoint ();
        let start = lo + i in
        for j = 0 to m.window - 1 do
          w.(j) <- Trace.get trace (start + j)
        done;
        let best_sim = best_sim_from m.instances w 0 0 in
        let score = 1.0 -. (float_of_int best_sim /. sim_max) in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi
