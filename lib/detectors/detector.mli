(** The common shape of a sequence-based anomaly detector.

    Section 4.2 of the paper: each detector consists of (1) a mechanism
    for modelling normal behaviour, built by sliding a fixed-length
    window over training data; (2) a similarity metric — the locus of
    diversity; (3) a user-set thresholding mechanism.  This module pins
    down (1) and (3) so that implementations differ only in (2), exactly
    the experimental control the paper imposes. *)

open Seqdiv_stream

module type S = sig
  type model

  val name : string
  (** Short identifier, e.g. ["stide"]. *)

  val maximal_epsilon : float
  (** Slack for recognising a maximal response: a score [>= 1 - eps]
      counts as maximally anomalous.  0 for detectors whose metric emits
      exact 0/1 responses (Stide); small and positive for probabilistic
      metrics whose estimate of "impossible" may be a tiny probability
      rather than an exact zero (Markov, neural network). *)

  val train : window:int -> Trace.t -> model
  (** Build the normal-behaviour model from a training trace using the
      given detector-window size.  Requires [window >= 2] and a trace no
      shorter than the window. *)

  val train_of_trie : (Seq_trie.t -> window:int -> model) option
  (** When the detector's model is a view over a counting trie, the
      shared-trie constructor: build the model for one window size from
      a trie that indexed the training trace at least [window] symbols
      deep (one symbol deeper for context models such as Markov).  The
      engine builds that trie once per training trace and reuses it for
      every window cell and every capable detector; the result must be
      indistinguishable from [train] on the same trace.  [None] for
      detectors whose training is not trie-shaped (neural, HMM,
      instance-based). *)

  val window : model -> int
  (** The window size the model was trained with. *)

  val score_range : model -> Trace.t -> lo:int -> hi:int -> Response.t
  (** Responses whose item [start] lies in [\[lo, hi\]] (clamped to the
      valid range for the trace).  Restricting the range lets the
      evaluation score only the neighbourhood of an injected anomaly —
      important for the instance-based L&B detector, whose scoring cost
      is proportional to the database size. *)

  val score : model -> Trace.t -> Response.t
  (** All responses for a trace: [score_range] over the whole trace. *)

  val compile :
    (?automaton:Flat_automaton.t -> model -> Flat_automaton.scorer option)
    option
  (** When the model can be compiled to a flat-automaton scorer
      ({!Seqdiv_stream.Flat_automaton}), the compiler: the returned
      scorer must produce bit-identical responses to [score_range] on
      every trace — the trie descent stays the correctness reference.
      [?automaton] optionally reuses an automaton already compiled from
      the same training data at this model's window (the engine's
      automaton cache); implementations must check its depth and
      alphabet and compile a fresh one on any mismatch.  The inner
      option is for models a compiler cannot serve (e.g. a smoothed
      Markov model, whose scores are no longer a per-state table over
      the trained trie).  [None] for detectors with no compiled form. *)
end

type t = (module S)
(** A first-class detector, for registries and ensembles. *)

val clamp_range : trace_len:int -> window:int -> lo:int -> hi:int -> int * int
(** Helper shared by implementations: clamp [\[lo, hi\]] to the valid
    window-start range [\[0, trace_len - window\]].  The result may be
    empty ([fst > snd]). *)

val full_range : trace_len:int -> window:int -> int * int
(** The whole valid window-start range. *)

val obtain_automaton :
  ?automaton:Flat_automaton.t -> Seq_trie.t -> window:int -> Flat_automaton.t
(** Helper shared by [compile] implementations: [automaton] when it has
    depth [window] over the trie's alphabet, else a fresh
    {!Seqdiv_stream.Flat_automaton.compile} of the trie. *)

val compiled_score_range :
  Flat_automaton.scorer ->
  detector:string ->
  Trace.t ->
  lo:int ->
  hi:int ->
  Response.t
(** Score a range with a compiled scorer: the shared fast-path loop
    behind every [compile] implementation.  One automaton step and one
    table read per window, no allocation in the loop, and the same
    checkpoint cadence as the trie-descent scorers — so responses
    (including under armed deadlines) are bit-identical to the
    reference path. *)
