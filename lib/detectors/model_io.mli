(** Text serialisation of trained models.

    Deploying a detector means training once and scoring many times,
    often on another machine; these functions persist the two deployment
    detectors of the paper's combination scheme — Stide's sequence
    database and the Markov detector's conditional-count table — in a
    portable, versioned, line-oriented text format.

    (The neural network and HMM are cheap to retrain deterministically
    from the training trace and seed, which is itself persisted by
    {!Seqdiv_synth.Dataset_io}; serialising float weight matrices
    portably buys little, so they are deliberately not covered.) *)

val save_stide : Stide.model -> string
(** Serialise a Stide model (window size plus every distinct sequence
    with its count). *)

val load_stide : string -> Stide.model
(** Inverse of {!save_stide}.
    @raise Seqdiv_stream.Parse_error.Error on malformed input. *)

val save_markov : Markov.model -> string
(** Serialise a Markov model (window, alphabet size, and the
    context-continuation count table). *)

val load_markov : string -> Markov.model
(** Inverse of {!save_markov}.
    @raise Seqdiv_stream.Parse_error.Error on malformed input. *)

val save_stide_file : string -> Stide.model -> unit
val load_stide_file : string -> Stide.model
val save_markov_file : string -> Markov.model -> unit
val load_markov_file : string -> Markov.model
