(** Text serialisation of trained models.

    Deploying a detector means training once and scoring many times,
    often on another machine; these functions persist the two deployment
    detectors of the paper's combination scheme — Stide's sequence
    database and the Markov detector's conditional-count table — in a
    portable, versioned, line-oriented text format.

    (The neural network and HMM are cheap to retrain deterministically
    from the training trace and seed, which is itself persisted by
    {!Seqdiv_synth.Dataset_io}; serialising float weight matrices
    portably buys little, so they are deliberately not covered.)

    Alongside the text formats, a {e binary flat format} persists a
    compiled flat-automaton scorer for zero-copy deployment loads —
    see {!save_flat_file}. *)

open Seqdiv_stream

val save_stide : Stide.model -> string
(** Serialise a Stide model (window size plus every distinct sequence
    with its count). *)

val load_stide : string -> Stide.model
(** Inverse of {!save_stide}.
    @raise Seqdiv_stream.Parse_error.Error on malformed input. *)

val save_markov : Markov.model -> string
(** Serialise a Markov model (window, alphabet size, and the
    context-continuation count table). *)

val load_markov : string -> Markov.model
(** Inverse of {!save_markov}.
    @raise Seqdiv_stream.Parse_error.Error on malformed input. *)

val save_stide_file : string -> Stide.model -> unit

val load_stide_file : string -> Stide.model
(** @raise Seqdiv_stream.Parse_error.Error on malformed input or an
    unreadable file (the message carries the path). *)

val save_markov_file : string -> Markov.model -> unit

val load_markov_file : string -> Markov.model
(** @raise Seqdiv_stream.Parse_error.Error on malformed input or an
    unreadable file (the message carries the path). *)

(** {1 Binary flat-automaton format}

    A compiled scorer ({!Seqdiv_stream.Flat_automaton}) serialised as a
    versioned header plus straight 8-byte-aligned dumps of its tables.
    Loading [mmap]s each table directly out of the file — no parsing,
    no copying, no per-entry allocation — so a fleet of monitor
    processes cold-starts in microseconds and shares the page cache.
    The format is native-endian and 64-bit (a sanity tag in the header
    rejects foreign files); portable interchange stays with the text
    formats above. *)

type flat = {
  flat_detector : string;  (** detector name, e.g. ["stide"] *)
  flat_window : int;  (** window size (= automaton depth) *)
  flat_alarm_threshold : float;
      (** the detector's alarm threshold ({!Seqdiv_core.Trained} keeps
          it out of reach of a loader, so it travels in the file) *)
  flat_scorer : Flat_automaton.scorer;
}

val save_flat_file :
  string ->
  detector:string ->
  alarm_threshold:float ->
  Flat_automaton.scorer ->
  unit
(** Write a compiled scorer.  [detector] must be 1..8 bytes. *)

val load_flat_file : string -> flat
(** Map a saved scorer back, zero-copy, validating the tables once so
    the stepper's unchecked reads stay safe on untrusted files.
    @raise Seqdiv_stream.Parse_error.Error on malformed input or an
    unreadable file (the message carries the path). *)
