open Seqdiv_stream

module type S = sig
  type model

  val name : string
  val maximal_epsilon : float
  val train : window:int -> Trace.t -> model
  val train_of_trie : (Seq_trie.t -> window:int -> model) option
  val window : model -> int
  val score_range : model -> Trace.t -> lo:int -> hi:int -> Response.t
  val score : model -> Trace.t -> Response.t
end

type t = (module S)

let clamp_range ~trace_len ~window ~lo ~hi =
  let max_start = trace_len - window in
  (Stdlib.max 0 lo, Stdlib.min max_start hi)

let full_range ~trace_len ~window = (0, trace_len - window)
