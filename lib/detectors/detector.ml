open Seqdiv_stream

module type S = sig
  type model

  val name : string
  val maximal_epsilon : float
  val train : window:int -> Trace.t -> model
  val train_of_trie : (Seq_trie.t -> window:int -> model) option
  val window : model -> int
  val score_range : model -> Trace.t -> lo:int -> hi:int -> Response.t
  val score : model -> Trace.t -> Response.t

  val compile :
    (?automaton:Flat_automaton.t -> model -> Flat_automaton.scorer option)
    option
end

type t = (module S)

let clamp_range ~trace_len ~window ~lo ~hi =
  let max_start = trace_len - window in
  (Stdlib.max 0 lo, Stdlib.min max_start hi)

let full_range ~trace_len ~window = (0, trace_len - window)

(* Shared by the [compile] implementations: reuse a cached automaton
   when its shape matches the model's view of the trie, else compile a
   fresh one.  (The engine only offers automata compiled from the same
   training trace, so shape agreement is the whole compatibility
   check.) *)
let obtain_automaton ?automaton trie ~window =
  match automaton with
  | Some a
    when Flat_automaton.depth a = window
         && Flat_automaton.alphabet_size a = Seq_trie.alphabet_size trie ->
      a
  | Some _ | None -> Flat_automaton.compile trie ~depth:window

(* Shared batch-scoring loop over a compiled scorer: one automaton step
   and one score-table read per window.  The responses — and the
   checkpoint cadence, which an armed virtual-clock deadline observes —
   are exactly those of the trie-descent [score_range] loops. *)
let compiled_score_range scorer ~detector trace ~lo ~hi =
  let auto = Flat_automaton.automaton scorer in
  let window = Flat_automaton.depth auto in
  let lo, hi = clamp_range ~trace_len:(Trace.length trace) ~window ~lo ~hi in
  let data = Trace.raw trace in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let items = Array.make n { Response.start = 0; cover = window; score = 0.0 } in
  if n > 0 then begin
    (* Warm up on the first window - 1 symbols; thereafter each consumed
       symbol completes the window ending at it. *)
    let state = ref Flat_automaton.start in
    for i = lo to lo + window - 2 do
      state := Flat_automaton.step auto !state data.(i)
    done;
    for i = 0 to n - 1 do
      if i land 1023 = 0 then Seqdiv_util.Deadline.checkpoint ();
      state := Flat_automaton.step auto !state data.(lo + i + window - 1);
      items.(i) <-
        {
          Response.start = lo + i;
          cover = window;
          score = Flat_automaton.state_score scorer !state;
        }
    done
  end;
  Response.make ~detector ~window items
