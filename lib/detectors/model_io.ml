open Seqdiv_stream

let symbols_to_string key =
  Trace.symbols_of_key key |> Array.to_list |> List.map string_of_int
  |> String.concat ","

let symbols_of_string s =
  String.split_on_char ',' s
  |> List.map (fun tok ->
         match int_of_string_opt tok with
         | Some v when v >= 0 && v < 256 -> v
         | Some _ | None -> Parse_error.fail "Model_io: bad symbol %s" tok)
  |> Array.of_list

let save_stide model =
  let db = Stide.db model in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "#seqdiv-stide 1 window=%d\n" (Stide.window model));
  Seq_db.iter db (fun key count ->
      Buffer.add_string buf
        (Printf.sprintf "%d %s\n" count (symbols_to_string key)));
  Buffer.contents buf

let nonempty_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let load_stide s =
  match nonempty_lines s with
  | [] -> Parse_error.fail "Model_io.load_stide: empty input"
  | header :: rest ->
      let window =
        try Scanf.sscanf header "#seqdiv-stide 1 window=%d" (fun w -> w)
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          Parse_error.fail "Model_io.load_stide: bad header"
      in
      if window < 2 then Parse_error.fail "Model_io.load_stide: bad window";
      let db = Seq_db.create ~width:window () in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | None ->
              Parse_error.fail "Model_io.load_stide: malformed line: %s" line
          | Some i ->
              let count =
                match int_of_string_opt (String.sub line 0 i) with
                | Some c when c > 0 -> c
                | Some _ | None ->
                    Parse_error.fail "Model_io.load_stide: bad count in: %s"
                      line
              in
              let symbols =
                symbols_of_string
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              if Array.length symbols <> window then
                Parse_error.fail "Model_io.load_stide: wrong arity in: %s" line;
              Seq_db.add_many db (Trace.key_of_symbols symbols) ~count)
        rest;
      Stide.train_of_db db

let save_markov model =
  let buf = Buffer.create 1024 in
  let window = Markov.window model in
  (* Recover the alphabet size from any counts row; fold once. *)
  let k =
    Markov.fold_contexts model ~init:0 ~f:(fun acc ~context:_ ~counts ->
        Stdlib.max acc (Array.length counts))
  in
  Buffer.add_string buf
    (Printf.sprintf "#seqdiv-markov 1 window=%d alphabet=%d\n" window k);
  let lines =
    Markov.fold_contexts model ~init:[] ~f:(fun acc ~context ~counts ->
        Printf.sprintf "%s | %s"
          (symbols_to_string context)
          (String.concat "," (List.map string_of_int (Array.to_list counts)))
        :: acc)
  in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (List.sort compare lines);
  Buffer.contents buf

let load_markov s =
  match nonempty_lines s with
  | [] -> Parse_error.fail "Model_io.load_markov: empty input"
  | header :: rest ->
      let window, k =
        try
          Scanf.sscanf header "#seqdiv-markov 1 window=%d alphabet=%d"
            (fun w k -> (w, k))
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          Parse_error.fail "Model_io.load_markov: bad header"
      in
      if window < 2 || k < 1 then
        Parse_error.fail "Model_io.load_markov: bad header";
      let entries =
        List.map
          (fun line ->
            match String.index_opt line '|' with
            | None ->
                Parse_error.fail "Model_io.load_markov: malformed line: %s"
                  line
            | Some i ->
                let context_part = String.trim (String.sub line 0 i) in
                let counts_part =
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                let context =
                  Trace.key_of_symbols (symbols_of_string context_part)
                in
                let counts =
                  String.split_on_char ',' counts_part
                  |> List.map (fun tok ->
                         match int_of_string_opt tok with
                         | Some c when c >= 0 -> c
                         | Some _ | None ->
                             Parse_error.fail
                               "Model_io.load_markov: bad count %s" tok)
                  |> Array.of_list
                in
                (context, counts))
          rest
      in
      (try Markov.of_context_counts ~window ~alphabet_size:k entries
       with Invalid_argument msg ->
         Parse_error.fail "Model_io.load_markov: %s" msg)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_stide_file path model = write_file path (save_stide model)
let load_stide_file path = load_stide (read_file path)
let save_markov_file path model = write_file path (save_markov model)
let load_markov_file path = load_markov (read_file path)
