open Seqdiv_stream

let symbols_to_string key =
  Trace.symbols_of_key key |> Array.to_list |> List.map string_of_int
  |> String.concat ","

let symbols_of_string s =
  String.split_on_char ',' s
  |> List.map (fun tok ->
         match int_of_string_opt tok with
         | Some v when v >= 0 && v < 256 -> v
         | Some _ | None -> Parse_error.fail "Model_io: bad symbol %s" tok)
  |> Array.of_list

(* --- versioned line-format headers -------------------------------------- *)

(* Both text formats open with "#seqdiv-<kind> <version> k=v ...": one
   writer/parser pair serves them (and any future line format). *)

let format_version = 1

let header_line ~kind fields =
  Printf.sprintf "#seqdiv-%s %d %s\n" kind format_version
    (String.concat " "
       (List.map (fun (name, v) -> Printf.sprintf "%s=%d" name v) fields))

let parse_header ~what ~kind line =
  match String.split_on_char ' ' (String.trim line) with
  | tag :: version :: pairs ->
      if tag <> "#seqdiv-" ^ kind then
        Parse_error.fail "%s: bad header" what;
      if version <> string_of_int format_version then
        Parse_error.fail "%s: unsupported format version %s" what version;
      List.map
        (fun pair ->
          match String.index_opt pair '=' with
          | None -> Parse_error.fail "%s: bad header" what
          | Some i -> (
              let name = String.sub pair 0 i in
              let value = String.sub pair (i + 1) (String.length pair - i - 1) in
              match int_of_string_opt value with
              | Some v -> (name, v)
              | None -> Parse_error.fail "%s: bad header" what))
        pairs
  | _ -> Parse_error.fail "%s: bad header" what

let header_field ~what fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> Parse_error.fail "%s: bad header" what

let save_stide model =
  let db = Stide.db model in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (header_line ~kind:"stide" [ ("window", Stide.window model) ]);
  Seq_db.iter db (fun key count ->
      Buffer.add_string buf
        (Printf.sprintf "%d %s\n" count (symbols_to_string key)));
  Buffer.contents buf

let nonempty_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let load_stide s =
  match nonempty_lines s with
  | [] -> Parse_error.fail "Model_io.load_stide: empty input"
  | header :: rest ->
      let what = "Model_io.load_stide" in
      let fields = parse_header ~what ~kind:"stide" header in
      let window = header_field ~what fields "window" in
      if window < 2 then Parse_error.fail "Model_io.load_stide: bad window";
      let db = Seq_db.create ~width:window () in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | None ->
              Parse_error.fail "Model_io.load_stide: malformed line: %s" line
          | Some i ->
              let count =
                match int_of_string_opt (String.sub line 0 i) with
                | Some c when c > 0 -> c
                | Some _ | None ->
                    Parse_error.fail "Model_io.load_stide: bad count in: %s"
                      line
              in
              let symbols =
                symbols_of_string
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              if Array.length symbols <> window then
                Parse_error.fail "Model_io.load_stide: wrong arity in: %s" line;
              Seq_db.add_many db (Trace.key_of_symbols symbols) ~count)
        rest;
      Stide.train_of_db db

let save_markov model =
  let buf = Buffer.create 1024 in
  let window = Markov.window model in
  (* Recover the alphabet size from any counts row; fold once. *)
  let k =
    Markov.fold_contexts model ~init:0 ~f:(fun acc ~context:_ ~counts ->
        Stdlib.max acc (Array.length counts))
  in
  Buffer.add_string buf
    (header_line ~kind:"markov" [ ("window", window); ("alphabet", k) ]);
  let lines =
    Markov.fold_contexts model ~init:[] ~f:(fun acc ~context ~counts ->
        Printf.sprintf "%s | %s"
          (symbols_to_string context)
          (String.concat "," (List.map string_of_int (Array.to_list counts)))
        :: acc)
  in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (List.sort compare lines);
  Buffer.contents buf

let load_markov s =
  match nonempty_lines s with
  | [] -> Parse_error.fail "Model_io.load_markov: empty input"
  | header :: rest ->
      let what = "Model_io.load_markov" in
      let fields = parse_header ~what ~kind:"markov" header in
      let window = header_field ~what fields "window" in
      let k = header_field ~what fields "alphabet" in
      if window < 2 || k < 1 then
        Parse_error.fail "Model_io.load_markov: bad header";
      let entries =
        List.map
          (fun line ->
            match String.index_opt line '|' with
            | None ->
                Parse_error.fail "Model_io.load_markov: malformed line: %s"
                  line
            | Some i ->
                let context_part = String.trim (String.sub line 0 i) in
                let counts_part =
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                let context =
                  Trace.key_of_symbols (symbols_of_string context_part)
                in
                let counts =
                  String.split_on_char ',' counts_part
                  |> List.map (fun tok ->
                         match int_of_string_opt tok with
                         | Some c when c >= 0 -> c
                         | Some _ | None ->
                             Parse_error.fail
                               "Model_io.load_markov: bad count %s" tok)
                  |> Array.of_list
                in
                (context, counts))
          rest
      in
      (try Markov.of_context_counts ~window ~alphabet_size:k entries
       with Invalid_argument msg ->
         Parse_error.fail "Model_io.load_markov: %s" msg)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file ~what path =
  match open_in path with
  | exception Sys_error msg ->
      (* A missing or unreadable model file is a parse failure with the
         path attached, not a bare [Sys_error] — callers handle one
         exception for every way a load can go wrong. *)
      Parse_error.fail "%s: cannot read %s: %s" what path msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))

let save_stide_file path model = write_file path (save_stide model)

let load_stide_file path =
  load_stide (read_file ~what:"Model_io.load_stide_file" path)

let save_markov_file path model = write_file path (save_markov model)

let load_markov_file path =
  load_markov (read_file ~what:"Model_io.load_markov_file" path)

(* --- binary flat-automaton format ---------------------------------------- *)

(* Layout (version 1, native endianness, 64-bit words):

     bytes   0..7    magic "sqdvflat"
     bytes   8..15   format version (1)
     bytes  16..23   sanity tag 0x0123456789abcdef — catches an
                     endianness or word-size mismatch in one compare
     bytes  24..31   detector name, NUL-padded to 8 bytes
     bytes  32..39   window (= automaton depth)
     bytes  40..47   alphabet size
     bytes  48..55   state count
     bytes  56..63   alarm threshold (IEEE-754 bits)
     then, 8 bytes per entry, back to back:
       transitions   states x alphabet ints
       depths        states ints
       counts        states ints
       context tot.  states ints
       parents       states ints
       scores        states float64s

   Every section is a straight dump of the in-memory Bigarray, 8-byte
   aligned, so loading is [Unix.map_file] per section: no parsing, no
   copying, no per-entry allocation.  The one full read [of_tables]
   performs is validation, which is what keeps the stepper's unchecked
   table reads safe on untrusted files. *)

let flat_magic = "sqdvflat"
let flat_version = 1
let flat_sanity = 0x0123456789abcdefL
let flat_header_bytes = 64

type flat = {
  flat_detector : string;
  flat_window : int;
  flat_alarm_threshold : float;
  flat_scorer : Flat_automaton.scorer;
}

let save_flat_file path ~detector ~alarm_threshold scorer =
  if String.length detector = 0 || String.length detector > 8 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Model_io.save_flat_file: detector name must be 1..8 bytes";
  let auto = Flat_automaton.automaton scorer in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let w64 =
        let b = Bytes.create 8 in
        fun v ->
          Bytes.set_int64_ne b 0 v;
          output_bytes oc b
      in
      let wint v = w64 (Int64.of_int v) in
      let states = Flat_automaton.states auto in
      output_string oc flat_magic;
      wint flat_version;
      w64 flat_sanity;
      let name = Bytes.make 8 '\000' in
      Bytes.blit_string detector 0 name 0 (String.length detector);
      output_bytes oc name;
      wint (Flat_automaton.depth auto);
      wint (Flat_automaton.alphabet_size auto);
      wint states;
      w64 (Int64.bits_of_float alarm_threshold);
      let dump_int (table : Flat_automaton.table) =
        for i = 0 to Bigarray.Array1.dim table - 1 do
          wint (Bigarray.Array1.get table i)
        done
      in
      dump_int (Flat_automaton.transitions auto);
      dump_int (Flat_automaton.depths auto);
      dump_int (Flat_automaton.counts auto);
      dump_int (Flat_automaton.context_totals auto);
      dump_int (Flat_automaton.parents auto);
      let scores = Flat_automaton.score_table scorer in
      for i = 0 to Bigarray.Array1.dim scores - 1 do
        w64 (Int64.bits_of_float (Bigarray.Array1.get scores i))
      done)

let trim_nul s =
  match String.index_opt s '\000' with
  | None -> s
  | Some i -> String.sub s 0 i

let load_flat_file path =
  let what = "Model_io.load_flat_file" in
  if Sys.word_size <> 64 then
    Parse_error.fail "%s: requires a 64-bit platform" what;
  let fd =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | fd -> fd
    | exception Unix.Unix_error (err, _, _) ->
        Parse_error.fail "%s: cannot read %s: %s" what path
          (Unix.error_message err)
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < flat_header_bytes then
        Parse_error.fail "%s: %s: truncated header" what path;
      let header = Bytes.create flat_header_bytes in
      let got = Unix.read fd header 0 flat_header_bytes in
      if got <> flat_header_bytes then
        Parse_error.fail "%s: %s: truncated header" what path;
      let r64 off = Bytes.get_int64_ne header off in
      let rint off = Int64.to_int (r64 off) in
      if Bytes.sub_string header 0 8 <> flat_magic then
        Parse_error.fail "%s: %s: not a flat model file" what path;
      if rint 8 <> flat_version then
        Parse_error.fail "%s: %s: unsupported format version %d" what path
          (rint 8);
      if not (Int64.equal (r64 16) flat_sanity) then
        Parse_error.fail "%s: %s: endianness/word-size mismatch" what path;
      let detector = trim_nul (Bytes.sub_string header 24 8) in
      let window = rint 32 in
      let alphabet_size = rint 40 in
      let states = rint 48 in
      let alarm_threshold = Int64.float_of_bits (r64 56) in
      if window < 1 || alphabet_size < 1 || states < 1 then
        Parse_error.fail "%s: %s: bad dimensions" what path;
      let expect =
        flat_header_bytes + (8 * states * (alphabet_size + 5))
      in
      if size <> expect then
        Parse_error.fail "%s: %s: file size %d, expected %d" what path size
          expect;
      (* Zero-copy load: each section maps straight out of the file. *)
      let pos = ref flat_header_bytes in
      let map kind len =
        let a =
          Bigarray.array1_of_genarray
            (Unix.map_file fd ~pos:(Int64.of_int !pos) kind Bigarray.c_layout
               false [| len |])
        in
        pos := !pos + (8 * len);
        a
      in
      let transitions = map Bigarray.int (states * alphabet_size) in
      let depths = map Bigarray.int states in
      let counts = map Bigarray.int states in
      let context_totals = map Bigarray.int states in
      let parents = map Bigarray.int states in
      let scores = map Bigarray.float64 states in
      match
        let auto =
          Flat_automaton.of_tables ~alphabet_size ~depth:window ~transitions
            ~depths ~counts ~context_totals ~parents
        in
        Flat_automaton.scorer_of_tables auto scores
      with
      | scorer ->
          {
            flat_detector = detector;
            flat_window = window;
            flat_alarm_threshold = alarm_threshold;
            flat_scorer = scorer;
          }
      | exception Invalid_argument msg ->
          Parse_error.fail "%s: %s: %s" what path msg)

