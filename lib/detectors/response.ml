type item = { start : int; cover : int; score : float }

type t = { detector : string; window : int; items : item array }

let make ~detector ~window items =
  let prev = ref min_int in
  Array.iter
    (fun { start; cover; score } ->
      if score < 0.0 || score > 1.0 || Float.is_nan score then
        (* lint: allow partiality — documented precondition *)
        invalid_arg "Response.make: score out of [0,1]";
      (* lint: allow partiality — documented precondition *)
      if cover <= 0 then invalid_arg "Response.make: non-positive cover";
      (* lint: allow partiality — documented precondition *)
      if start < !prev then invalid_arg "Response.make: unsorted starts";
      prev := start)
    items;
  { detector; window; items }

let length t = Array.length t.items

let max_score t =
  Array.fold_left (fun acc i -> Float.max acc i.score) 0.0 t.items

let over t ~threshold =
  Array.to_list t.items |> List.filter (fun i -> i.score >= threshold)

let count_over t ~threshold =
  Array.fold_left
    (fun acc i -> if i.score >= threshold then acc + 1 else acc)
    0 t.items

let restrict t ~lo ~hi =
  let keep i = i.start <= hi && i.start + i.cover - 1 >= lo in
  { t with items = Array.of_seq (Seq.filter keep (Array.to_seq t.items)) }

let binarize t ~threshold =
  {
    t with
    items =
      Array.map
        (fun i -> { i with score = (if i.score >= threshold then 1.0 else 0.0) })
        t.items;
  }
