(** The Markov-based detector (Teng, Chen & Lu 1990; Jha, Tan & Maxion
    2001).

    For every window of size DW the detector conditions on the first
    DW−1 elements and scores the probability that the DW-th element
    follows them, as estimated from training counts.  The response is
    [1 − P(next | context)], so 0 means "the usual continuation" and 1
    means "a continuation never seen after this context" — including
    the case of a context that itself never occurred in training
    (Section 5.2; the paper's DW = 2 case is the classic first-order
    Markov assumption, context of a single element).

    The detector's {!Detector.S.maximal_epsilon} equals the paper's
    rare-sequence threshold (0.5 %): a continuation whose estimated
    probability is below the rarity cut-off is maximally anomalous.
    This encodes the paper's observation that the Markov detector
    responds maximally both to foreign sequences and to rare ones —
    the source of its wide coverage and of its higher false-alarm
    rate. *)

include Detector.S

val of_trie : Seqdiv_stream.Seq_trie.t -> window:int -> model
(** Model reading its conditional counts straight out of a shared
    counting trie — what {!Detector.S.train_of_trie} exposes to the
    engine.  The trie must index the training trace at least [window]
    symbols deep.  Requires [2 <= window <= Seq_trie.max_len trie]. *)

val context_length : model -> int
(** [window − 1]: the number of conditioning elements. *)

val probability : model -> context:int array -> next:int -> float
(** Estimated [P(next | context)].  0 when the context was never seen.
    Requires [Array.length context = context_length model]. *)

val contexts : model -> int
(** Number of distinct contexts in the trained model. *)

val fold_contexts :
  model -> init:'a -> f:('a -> context:string -> counts:int array -> 'a) -> 'a
(** Fold over the trained conditional-count table in ascending context
    order: each context key (encoded as in
    {!Seqdiv_stream.Trace.key}) with its per-symbol continuation
    counts.  Deterministic traversal; used by model serialisation. *)

val of_context_counts :
  window:int -> alphabet_size:int -> (string * int array) list -> model
(** Rebuild a model from serialised context counts.  Each counts array
    must have length [alphabet_size]; each context key length must be
    [window - 1].  Inverse of {!fold_contexts}. *)

val with_smoothing : model -> alpha:float -> model
(** Laplace-smoothed variant:
    [P̂(next | ctx) = (count + alpha) / (total + alpha·k)], and an unseen
    context predicts uniformly.  [alpha = 0] is the paper's
    maximum-likelihood detector.  Smoothing is a common deployment knob
    — and the A8 ablation shows it quietly destroys the maximal-response
    guarantee the paper's threshold-of-1 comparison rests on: with
    enough smoothing no response reaches 1 and every cell of the map
    degrades from capable to weak.  Requires [alpha >= 0]. *)

val smoothing : model -> float
(** The model's smoothing constant (0 unless {!with_smoothing} was
    applied). *)
