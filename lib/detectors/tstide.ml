open Seqdiv_stream

let default_threshold = 0.005

type model = { window : int; threshold : float; db : Seq_db.t }

let name = "tstide"
let maximal_epsilon = 0.0

let train_with ~threshold ~window trace =
  assert (window >= 2);
  assert (threshold > 0.0 && threshold < 1.0);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Tstide.train: trace shorter than window";
  { window; threshold; db = Seq_db.of_trace ~width:window trace }

let train ~window trace = train_with ~threshold:default_threshold ~window trace

let of_trie trie ~window =
  assert (window >= 2);
  {
    window;
    threshold = default_threshold;
    db = Seq_db.of_trie trie ~width:window;
  }

let train_of_trie = Some of_trie
let window m = m.window
let threshold m = m.threshold
let db m = m.db

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  let data = Trace.raw trace in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let items =
    Array.init n (fun i ->
        if i land 1023 = 0 then Seqdiv_util.Deadline.checkpoint ();
        let start = lo + i in
        let anomalous =
          (not (Seq_db.mem_at m.db data ~pos:start))
          || Seq_db.is_rare_at m.db ~threshold:m.threshold data ~pos:start
        in
        let score = if anomalous then 1.0 else 0.0 in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi
