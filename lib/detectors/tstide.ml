open Seqdiv_stream

let default_threshold = 0.005

type model = { window : int; threshold : float; db : Seq_db.t }

let name = "tstide"
let maximal_epsilon = 0.0

let train_with ~threshold ~window trace =
  assert (window >= 2);
  assert (threshold > 0.0 && threshold < 1.0);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Tstide.train: trace shorter than window";
  { window; threshold; db = Seq_db.of_trace ~width:window trace }

let train ~window trace = train_with ~threshold:default_threshold ~window trace

let window m = m.window
let threshold m = m.threshold
let db m = m.db

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let items =
    Array.init n (fun i ->
        let start = lo + i in
        let key = Trace.key trace ~pos:start ~len:m.window in
        let anomalous =
          Seq_db.is_foreign m.db key
          || Seq_db.is_rare m.db ~threshold:m.threshold key
        in
        let score = if anomalous then 1.0 else 0.0 in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi
