open Seqdiv_stream

let default_threshold = 0.005

type model = { window : int; threshold : float; db : Seq_db.t }

let name = "tstide"
let maximal_epsilon = 0.0

let train_with ~threshold ~window trace =
  assert (window >= 2);
  assert (threshold > 0.0 && threshold < 1.0);
  if Trace.length trace < window then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Tstide.train: trace shorter than window";
  { window; threshold; db = Seq_db.of_trace ~width:window trace }

let train ~window trace = train_with ~threshold:default_threshold ~window trace

let of_trie trie ~window =
  assert (window >= 2);
  {
    window;
    threshold = default_threshold;
    db = Seq_db.of_trie trie ~width:window;
  }

let train_of_trie = Some of_trie
let window m = m.window
let threshold m = m.threshold
let db m = m.db

let score_range m trace ~lo ~hi =
  let lo, hi =
    Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window ~lo
      ~hi
  in
  let data = Trace.raw trace in
  let n = Stdlib.max 0 (hi - lo + 1) in
  let items =
    Array.init n (fun i ->
        if i land 1023 = 0 then Seqdiv_util.Deadline.checkpoint ();
        let start = lo + i in
        let anomalous =
          (not (Seq_db.mem_at m.db data ~pos:start))
          || Seq_db.is_rare_at m.db ~threshold:m.threshold data ~pos:start
        in
        let score = if anomalous then 1.0 else 0.0 in
        { Response.start; cover = m.window; score })
  in
  Response.make ~detector:name ~window:m.window items

let score m trace =
  let lo, hi =
    Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
  in
  score_range m trace ~lo ~hi

(* Compiled form: a shallow state is a foreign window (score 1); a
   full-depth state carries the window's count, so the rarity test is
   the same division [Seq_trie.is_rare_at] performs (bit-identical
   float expression, [count >= 1] by construction). *)
let compile_model ?automaton m =
  let trie = Seq_db.trie m.db in
  let auto = Detector.obtain_automaton ?automaton trie ~window:m.window in
  let total = Seq_trie.total trie m.window in
  Some
    (Flat_automaton.make_scorer auto ~score:(fun s ->
         if Flat_automaton.state_depth auto s < m.window then 1.0
         else if
           float_of_int (Flat_automaton.state_count auto s)
           /. float_of_int total
           < m.threshold
         then 1.0
         else 0.0))

let compile = Some compile_model
