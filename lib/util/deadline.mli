(** Cooperative per-task deadlines — the watchdog half of the
    supervision layer.

    The engine's supervisor can isolate and classify a fault, but a
    task that {e never returns} gives it nothing to classify.  A
    {!spec} bounds such tasks cooperatively: the supervisor arms the
    spec around each task ({!with_deadline}), and the train/score hot
    loops call {!checkpoint} periodically.  When the armed budget is
    exhausted the checkpoint raises {!Exceeded}, which
    {!Seqdiv_core.Fault.classify} maps to the non-retried [Timeout]
    severity — the hung cell degrades to a visible failure instead of
    stalling the run.

    {b The clock is injected}, never read from the wall by this module:
    executables pass [Unix.gettimeofday]; tests pass a deterministic
    virtual clock ([test/support/fake_clock.ml]) so every deadline path
    runs without sleeping.

    {b Determinism.}  {!Exceeded} carries only the budget (a
    configuration constant), never the measured elapsed time, so the
    rendered fault of a timed-out cell is byte-identical across runs
    and jobs counts.

    {b Domain-locality.}  The ambient deadline is [Domain.DLS] state:
    arming is visible only to the arming domain, which is exactly the
    pool's execution model (one task at a time per domain).
    {!checkpoint} from a domain with no armed deadline is a no-op, so
    library code may checkpoint unconditionally. *)

type spec
(** A deadline policy: a monotonic clock (seconds, as [float]) plus a
    budget in milliseconds.  Reusable — each {!arm}/{!with_deadline}
    takes a fresh start-time snapshot. *)

type t
(** An armed deadline: a [spec] plus the instant it started. *)

exception Exceeded of int
(** Raised by {!check}/{!checkpoint} when the armed budget (the
    payload, in milliseconds) is spent.  Deliberately carries no
    elapsed-time measurement — see the determinism note above. *)

exception Hang_refused
(** Raised by {!hang} when no deadline is armed: without a watchdog the
    spin would be a true hang, so it refuses to start. *)

val spec : clock:(unit -> float) -> budget_ms:int -> spec
(** [spec ~clock ~budget_ms] is a deadline policy.  [clock] must be
    monotone non-decreasing as observed by any single domain.
    @raise Invalid_argument if [budget_ms <= 0]. *)

val budget_ms : spec -> int

val arm : spec -> t
(** Snapshot the clock and start the countdown. *)

val expired : t -> bool
(** Whether the armed budget is already spent. *)

val check : t -> unit
(** @raise Exceeded iff {!expired}. *)

val with_deadline : spec -> (unit -> 'a) -> 'a
(** [with_deadline spec f] arms a fresh deadline as the calling
    domain's ambient deadline, runs [f], and restores the previous
    ambient deadline on the way out (normal return or raise).  The
    supervisor wraps every train/score task execution in this. *)

val checkpoint : unit -> unit
(** The hook library hot loops call.  A no-op when the calling domain
    has no ambient deadline armed.
    @raise Exceeded when the ambient deadline is armed and spent. *)

val active : unit -> bool
(** Whether the calling domain currently has an ambient deadline. *)

val hang : unit -> 'a
(** A {e cooperative} infinite loop: spin on {!checkpoint} until the
    ambient deadline fires.  The chaos harness's stand-in for a task
    that never returns ([Fault_plan] hang injection).
    @raise Exceeded when the ambient deadline fires.
    @raise Hang_refused if no deadline is armed. *)
