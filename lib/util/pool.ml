(* The one concurrency-bearing module of the library (lint rule R6).
   Work items are claimed from a shared atomic cursor in chunks and
   results land in their input slot, which is what makes the map
   order-preserving and hence byte-identical across jobs counts. *)

type t = { jobs : int; chunk : int }

let create ?(chunk = 1) ~jobs () =
  { jobs = Stdlib.max 1 jobs; chunk = Stdlib.max 1 chunk }

let jobs t = t.jobs
let chunk t = t.chunk
let recommended_jobs () = Domain.recommended_domain_count ()

exception Worker_failure of exn * Printexc.raw_backtrace

let map_array t f input =
  let n = Array.length input in
  if t.jobs = 1 || n <= 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next t.chunk in
        if start < n && Atomic.get failure = None then begin
          let stop = Stdlib.min n (start + t.chunk) in
          (try
             for i = start to stop - 1 do
               results.(i) <- Some (f input.(i))
             done
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore
               (Atomic.compare_and_set failure None
                  (Some (Worker_failure (e, bt)))));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init
        (Stdlib.min (t.jobs - 1) (n - 1))
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (Worker_failure (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Some _ | None -> ());
    Array.map
      (function
        | Some v -> v
        | None ->
            (* Unreachable: every slot below [n] is filled unless a
               worker failed, and failures re-raise above. *)
            (* lint: allow partiality — pool fill invariant *)
            invalid_arg "Pool.map: unfilled result slot")
      results
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let map2 t f xs ys =
  if List.length xs <> List.length ys then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Pool.map2: lists of unequal length";
  map t (fun (x, y) -> f x y) (List.combine xs ys)
