(* The one concurrency-bearing module of the library (lint rule R6).
   Work items are claimed from a shared atomic cursor in chunks and
   results land in their input slot, which is what makes the maps
   order-preserving and hence byte-identical across jobs counts.

   [map_result] is the isolation primitive the engine's supervisor is
   built on: every task runs in its own try frame and an exception is
   captured into that task's result slot — one raising closure can
   never poison the rest of the batch. *)

type t = { jobs : int; chunk : int }

let create ?(chunk = 1) ~jobs () =
  { jobs = Stdlib.max 1 jobs; chunk = Stdlib.max 1 chunk }

let jobs t = t.jobs
let chunk t = t.chunk
let recommended_jobs () = Domain.recommended_domain_count ()

type failure = {
  index : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

(* Run one task in isolation: the catch-all is not a swallow — the
   exception travels to the caller inside the task's [Error] slot. *)
let run_isolated f i x =
  match f x with
  | v -> Ok v
  (* lint: allow swallow — captured into the task's result slot *)
  | exception exn ->
      (* Capture the backtrace as the handler's very first action: the
         domain holds only the *current* exception's backtrace, so any
         allocation or raise-and-catch sequenced before the read (record
         field evaluation order is unspecified) could clobber it.  With
         the capture hoisted, every failing slot of a chunk — including
         the second of two failures in the same chunk — keeps its own
         backtrace. *)
      let backtrace = Printexc.get_raw_backtrace () in
      Error { index = i; exn; backtrace }

let map_result_array t f input =
  let n = Array.length input in
  if t.jobs = 1 || n <= 1 then Array.mapi (run_isolated f) input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next t.chunk in
        if start < n then begin
          let stop = Stdlib.min n (start + t.chunk) in
          for i = start to stop - 1 do
            results.(i) <- Some (run_isolated f i input.(i))
          done;
          loop ()
        end
      in
      loop ()
    in
    (* Backtrace recording is per-domain state in OCaml 5 and a fresh
       domain starts from the runtime default, not from the caller's
       setting — without this a failure caught on a spawned worker
       would carry an empty backtrace while the same failure on the
       calling domain carries a full one. *)
    let record_backtraces = Printexc.backtrace_status () in
    let spawned =
      Array.init
        (Stdlib.min (t.jobs - 1) (n - 1))
        (fun _ ->
          Domain.spawn (fun () ->
              Printexc.record_backtrace record_backtraces;
              worker ()))
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some r -> r
        | None ->
            (* Unreachable: the cursor hands out every index below [n]
               exactly once and [run_isolated] never raises. *)
            (* lint: allow partiality — pool fill invariant *)
            invalid_arg "Pool.map_result: unfilled result slot")
      results
  end

let map_result t f xs = Array.to_list (map_result_array t f (Array.of_list xs))

let map_array t f input =
  let results = map_result_array t f input in
  (* In-order scan: the first [Error] met is the lowest-index failure,
     and it re-raises with the backtrace captured in *its own* slot —
     never a backtrace smeared from another failure in the same
     chunk. *)
  Array.iter
    (function
      | Error { exn; backtrace; _ } ->
          Printexc.raise_with_backtrace exn backtrace
      | Ok _ -> ())
    results;
  Array.map
    (function
      | Ok v -> v
      | Error _ ->
          (* Unreachable: the lowest-index failure re-raised above. *)
          (* lint: allow partiality — pool fill invariant *)
          invalid_arg "Pool.map: failure survived the re-raise scan")
    results

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let map2 t f xs ys =
  (* The length guard must fire before any task can start (and in
     particular before any domain is spawned): compare lengths with one
     explicit scan rather than trusting a downstream combine. *)
  let rec same_length = function
    | [], [] -> true
    | _ :: xs, _ :: ys -> same_length (xs, ys)
    | [], _ :: _ | _ :: _, [] -> false
  in
  if not (same_length (xs, ys)) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Pool.map2: lists of unequal length";
  map t (fun (x, y) -> f x y) (List.combine xs ys)
