(** A fixed-size worker pool over OCaml 5 [Domain]s.

    The pool parallelises {e pure} work only: the experiment engine
    keeps every PRNG-consuming step (stream generation, injection
    search) serial and hands the pool nothing but train/score closures
    whose results are a function of their arguments.  Under that
    contract the pool is deterministic by construction — {!map} and
    {!map2} are order-preserving, so results are byte-identical for
    every [jobs] count, including [jobs = 1] which degrades to a plain
    serial map without spawning any domain.

    This is the only module of the library permitted to touch
    [Domain] / [Atomic] / [Mutex] (lint rule R6, concurrency-hygiene);
    everything above it stays single-domain and auditable. *)

type t

val create : ?chunk:int -> jobs:int -> unit -> t
(** [create ~jobs ()] is a pool of [jobs] workers ([jobs] is clamped
    to at least 1).  [chunk] (default 1, clamped to at least 1) is the
    number of consecutive tasks a worker claims at a time: 1 gives the
    best load balance for heavy tasks (training a detector), larger
    chunks amortise contention for many tiny tasks. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val chunk : t -> int
(** The chunk size the pool was created with. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j 0] resolves to in
    the executables. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  With [jobs = 1] this is exactly
    [List.map f] on the calling domain.  With [jobs > 1] the calling
    domain participates as one of the workers, so [jobs - 1] domains
    are spawned per call.  If [f] raises on any element, the first
    exception (in claim order) is re-raised on the calling domain
    after every worker has stopped. *)

val map2 : t -> ('a -> 'b -> 'c) -> 'a list -> 'b list -> 'c list
(** Order-preserving binary {!map}.  The lists must have equal
    lengths.  @raise Invalid_argument otherwise. *)
