(** A fixed-size worker pool over OCaml 5 [Domain]s.

    The pool parallelises {e pure} work only: the experiment engine
    keeps every PRNG-consuming step (stream generation, injection
    search) serial and hands the pool nothing but train/score closures
    whose results are a function of their arguments.  Under that
    contract the pool is deterministic by construction — {!map},
    {!map2} and {!map_result} are order-preserving, so results are
    byte-identical for every [jobs] count, including [jobs = 1] which
    degrades to a plain serial map without spawning any domain.

    This is the only module of the library permitted to touch
    [Domain] / [Atomic] / [Mutex] (lint rule R6, concurrency-hygiene);
    everything above it stays single-domain and auditable. *)

type t

val create : ?chunk:int -> jobs:int -> unit -> t
(** [create ~jobs ()] is a pool of [jobs] workers ([jobs] is clamped
    to at least 1).  [chunk] (default 1, clamped to at least 1) is the
    number of consecutive tasks a worker claims at a time: 1 gives the
    best load balance for heavy tasks (training a detector), larger
    chunks amortise contention for many tiny tasks. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val chunk : t -> int
(** The chunk size the pool was created with. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j 0] resolves to in
    the executables. *)

type failure = {
  index : int;  (** position of the failed task in the input list *)
  exn : exn;  (** the exception the task raised *)
  backtrace : Printexc.raw_backtrace;
      (** captured where the exception was caught, on the worker *)
}
(** One isolated task failure, as captured by {!map_result}. *)

val map_result : t -> ('a -> 'b) -> 'a list -> ('b, failure) result list
(** Order-preserving parallel map with per-task fault isolation: every
    task runs in its own try frame, and a raising closure yields
    [Error] in {e its own} slot while every other task still runs to
    completion — no exception ever poisons the batch.  This is the
    primitive the engine's task supervisor retries and classifies
    over.  With [jobs = 1] the tasks run serially on the calling
    domain, still isolated. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  With [jobs = 1] this is exactly
    [List.map f] on the calling domain.  With [jobs > 1] the calling
    domain participates as one of the workers, so [jobs - 1] domains
    are spawned per call.  If [f] raises on any element, every task is
    still run ({!map_result} underneath) and then the lowest-index
    failure is re-raised on the calling domain with its original
    backtrace. *)

val map2 : t -> ('a -> 'b -> 'c) -> 'a list -> 'b list -> 'c list
(** Order-preserving binary {!map}.  The lists must have equal
    lengths.  @raise Invalid_argument {e before any task starts or any
    domain is spawned} otherwise. *)
