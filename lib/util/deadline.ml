(* Cooperative per-task deadlines.  A [spec] is a policy (an injected
   monotonic clock plus a budget); arming it snapshots the clock, and
   long-running loops call {!checkpoint} — a no-op unless the current
   domain armed a deadline — to give the supervisor a chance to bound
   them.  Nothing here is preemptive: a task that never checkpoints is
   never interrupted, which is exactly the cooperative contract.

   Determinism: {!Exceeded} carries only the budget, never the elapsed
   time, so a timed-out task renders the same fault string in every
   run, at every jobs count, under any clock. *)

type spec = { clock : unit -> float; budget_ms : int }

type t = { spec : spec; started : float }

exception Exceeded of int

exception Hang_refused

let spec ~clock ~budget_ms =
  if budget_ms <= 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Deadline.spec: budget_ms must be positive";
  { clock; budget_ms }

let budget_ms s = s.budget_ms

let arm spec = { spec; started = spec.clock () }

let expired t =
  (t.spec.clock () -. t.started) *. 1000.0 > float_of_int t.spec.budget_ms

let check t = if expired t then raise (Exceeded t.spec.budget_ms)

(* The ambient deadline is domain-local state: each worker domain arms
   its own deadline around the one task it is currently executing, so
   checkpoints in library hot loops need no threading of a [t] through
   every signature.  Confined here by design (lint rule R6 elsewhere). *)
let ambient : t option Domain.DLS.key =
  (* lint: allow concurrency — domain-local ambient deadline *)
  Domain.DLS.new_key (fun () -> None)

let active () =
  (* lint: allow concurrency — domain-local ambient deadline *)
  match Domain.DLS.get ambient with None -> false | Some _ -> true

let checkpoint () =
  (* lint: allow concurrency — domain-local ambient deadline *)
  match Domain.DLS.get ambient with None -> () | Some t -> check t

let with_deadline spec f =
  let armed = arm spec in
  (* lint: allow concurrency — domain-local ambient deadline *)
  let previous = Domain.DLS.get ambient in
  (* lint: allow concurrency — domain-local ambient deadline *)
  Domain.DLS.set ambient (Some armed);
  Fun.protect
    ~finally:(fun () ->
      (* lint: allow concurrency — domain-local ambient deadline *)
      Domain.DLS.set ambient previous)
    f

let rec hang () =
  if not (active ()) then raise Hang_refused;
  checkpoint ();
  hang ()

let () =
  Printexc.register_printer (function
    | Exceeded budget ->
        Some (Printf.sprintf "Deadline.Exceeded(budget=%dms)" budget)
    | Hang_refused -> Some "Deadline.Hang_refused"
    | _ -> None)
