type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  assert (rows > 0 && cols > 0);
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init ~rows ~cols f =
  assert (rows > 0 && cols > 0);
  let data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) in
  { rows; cols; data }

let random rng ~rows ~cols ~scale =
  init ~rows ~cols (fun _ _ -> Prng.float rng (2.0 *. scale) -. scale)

let rows m = m.rows
let cols m = m.cols

let get m i j =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j)

let set m i j x =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let mul_vec m v =
  assert (Array.length v = m.cols);
  let out = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. v.(j))
    done;
    out.(i) <- !acc
  done;
  out

(* Same product and float-operation order as [mul_vec], but into a
   caller-owned destination and with the accumulator living in the
   destination cell: the scoring paths call this per window, where a
   fresh result array or a ref accumulator would allocate (lint R11). *)
let mul_vec_into m v dst =
  assert (Array.length v = m.cols);
  assert (Array.length dst = m.rows);
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    dst.(i) <- 0.0;
    for j = 0 to m.cols - 1 do
      dst.(i) <- dst.(i) +. (m.data.(base + j) *. v.(j))
    done
  done

let tmul_vec m v =
  assert (Array.length v = m.rows);
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let vi = v.(i) in
    if vi <> 0.0 then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (m.data.(base + j) *. vi)
      done
  done;
  out

let add_outer m u v ~scale =
  assert (Array.length u = m.rows);
  assert (Array.length v = m.cols);
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let ui = scale *. u.(i) in
    if ui <> 0.0 then
      for j = 0 to m.cols - 1 do
        m.data.(base + j) <- m.data.(base + j) +. (ui *. v.(j))
      done
  done

let scale_in_place m c =
  for k = 0 to Array.length m.data - 1 do
    m.data.(k) <- m.data.(k) *. c
  done

let add_in_place dst src =
  assert (dst.rows = src.rows && dst.cols = src.cols);
  for k = 0 to Array.length dst.data - 1 do
    dst.data.(k) <- dst.data.(k) +. src.data.(k)
  done

let map f m = { m with data = Array.map f m.data }

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let of_arrays a =
  let rows = Array.length a in
  assert (rows > 0);
  let cols = Array.length a.(0) in
  Array.iter (fun row -> assert (Array.length row = cols)) a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let frobenius_norm m =
  sqrt (Array.fold_left (fun s x -> s +. (x *. x)) 0.0 m.data)
