(** Dense row-major float matrices.

    A minimal linear-algebra kernel sufficient for the feed-forward
    neural-network detector: creation, element access, matrix–vector
    products and in-place updates.  Dimensions are checked with
    assertions. *)

type t
(** A dense [rows × cols] matrix of floats. *)

val create : rows:int -> cols:int -> t
(** Zero-filled matrix.  Requires positive dimensions. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
(** [init ~rows ~cols f] fills position [(i, j)] with [f i j]. *)

val random : Prng.t -> rows:int -> cols:int -> scale:float -> t
(** Entries drawn uniformly from [\[-scale, scale\]] — the usual small
    symmetric initialisation for neural-network weights. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t

val mul_vec : t -> float array -> float array
(** [mul_vec m v] is the matrix–vector product [m · v].
    Requires [Array.length v = cols m]. *)

val mul_vec_into : t -> float array -> float array -> unit
(** [mul_vec_into m v dst] computes [m · v] into [dst] without
    allocating — same result, bit for bit, as {!mul_vec}.  Requires
    [Array.length v = cols m] and [Array.length dst = rows m]. *)

val tmul_vec : t -> float array -> float array
(** [tmul_vec m v] is [mᵀ · v].  Requires [Array.length v = rows m]. *)

val add_outer : t -> float array -> float array -> scale:float -> unit
(** [add_outer m u v ~scale] performs the rank-1 update
    [m ← m + scale · u vᵀ] in place.  Requires [Array.length u = rows m]
    and [Array.length v = cols m].  This is the weight-gradient step of
    back-propagation. *)

val scale_in_place : t -> float -> unit
(** Multiply every entry by a constant, in place. *)

val add_in_place : t -> t -> unit
(** [add_in_place dst src] adds [src] to [dst] element-wise. *)

val map : (float -> float) -> t -> t
(** Element-wise map into a fresh matrix. *)

val to_arrays : t -> float array array
(** Row-major copy, for inspection and tests. *)

val of_arrays : float array array -> t
(** Inverse of {!to_arrays}.  Requires a rectangular, non-empty input. *)

val frobenius_norm : t -> float
(** Square root of the sum of squared entries. *)
