open Seqdiv_stream
open Seqdiv_test_support

let key l = Trace.key_of_symbols (Array.of_list l)

let test_empty () =
  let db = Seq_db.create ~width:3 () in
  Alcotest.(check int) "total" 0 (Seq_db.total db);
  Alcotest.(check int) "cardinal" 0 (Seq_db.cardinal db);
  Alcotest.(check bool) "mem" false (Seq_db.mem db (key [ 0; 1; 2 ]));
  check_float "freq" ~epsilon:0.0 0.0 (Seq_db.freq db (key [ 0; 1; 2 ]))

let test_add_counts () =
  let db = Seq_db.create ~width:2 () in
  Seq_db.add db (key [ 0; 1 ]);
  Seq_db.add db (key [ 0; 1 ]);
  Seq_db.add db (key [ 1; 2 ]);
  Alcotest.(check int) "total" 3 (Seq_db.total db);
  Alcotest.(check int) "cardinal" 2 (Seq_db.cardinal db);
  Alcotest.(check int) "count" 2 (Seq_db.count db (key [ 0; 1 ]));
  check_float "freq" ~epsilon:1e-9 (2.0 /. 3.0) (Seq_db.freq db (key [ 0; 1 ]))

let test_of_trace () =
  (* 0 1 0 1 0 -> 2-windows: 01 10 01 10 *)
  let db = Seq_db.of_trace ~width:2 (trace8 [ 0; 1; 0; 1; 0 ]) in
  Alcotest.(check int) "total = window count" 4 (Seq_db.total db);
  Alcotest.(check int) "cardinal" 2 (Seq_db.cardinal db);
  Alcotest.(check int) "01 twice" 2 (Seq_db.count db (key [ 0; 1 ]))

let test_classification () =
  let db = Seq_db.create ~width:1 () in
  for _ = 1 to 99 do
    Seq_db.add db (key [ 0 ])
  done;
  Seq_db.add db (key [ 1 ]);
  let threshold = 0.05 in
  Alcotest.(check bool) "common" true (Seq_db.is_common db ~threshold (key [ 0 ]));
  Alcotest.(check bool) "rare" true (Seq_db.is_rare db ~threshold (key [ 1 ]));
  Alcotest.(check bool) "foreign" true (Seq_db.is_foreign db (key [ 2 ]));
  Alcotest.(check bool) "foreign not rare" false
    (Seq_db.is_rare db ~threshold (key [ 2 ]));
  Alcotest.(check bool) "rare not common" false
    (Seq_db.is_common db ~threshold (key [ 1 ]))

let test_rare_common_keys () =
  let db = Seq_db.create ~width:1 () in
  for _ = 1 to 99 do
    Seq_db.add db (key [ 0 ])
  done;
  Seq_db.add db (key [ 1 ]);
  Alcotest.(check (list string)) "rare keys" [ key [ 1 ] ]
    (Seq_db.rare_keys db ~threshold:0.05);
  Alcotest.(check (list string)) "common keys" [ key [ 0 ] ]
    (Seq_db.common_keys db ~threshold:0.05)

let test_boundary_threshold () =
  (* Frequency exactly at the threshold counts as common, not rare. *)
  let db = Seq_db.create ~width:1 () in
  Seq_db.add db (key [ 0 ]);
  Seq_db.add db (key [ 1 ]);
  Alcotest.(check bool) "at threshold is common" true
    (Seq_db.is_common db ~threshold:0.5 (key [ 0 ]));
  Alcotest.(check bool) "at threshold not rare" false
    (Seq_db.is_rare db ~threshold:0.5 (key [ 0 ]))

let test_fold_iter_agree () =
  let db = Seq_db.of_trace ~width:2 (trace8 [ 0; 1; 2; 3; 0; 1 ]) in
  let via_fold = Seq_db.fold db ~init:0 ~f:(fun acc _ c -> acc + c) in
  let via_iter = ref 0 in
  Seq_db.iter db (fun _ c -> via_iter := !via_iter + c);
  Alcotest.(check int) "fold = iter" via_fold !via_iter;
  Alcotest.(check int) "= total" (Seq_db.total db) via_fold

let symbols_gen = QCheck.(list_of_size Gen.(5 -- 60) (int_bound 7))

let prop_total_equals_windows =
  qcheck "total = window count" QCheck.(pair symbols_gen (int_range 1 4))
    (fun (l, width) ->
      QCheck.assume (List.length l >= width);
      let t = trace8 l in
      let db = Seq_db.of_trace ~width t in
      Seq_db.total db = Trace.window_count t ~width)

let prop_every_window_member =
  qcheck "every window is a member" QCheck.(pair symbols_gen (int_range 1 4))
    (fun (l, width) ->
      QCheck.assume (List.length l >= width);
      let t = trace8 l in
      let db = Seq_db.of_trace ~width t in
      let ok = ref true in
      Trace.iter_windows t ~width (fun pos ->
          if not (Seq_db.mem db (Trace.key t ~pos ~len:width)) then ok := false);
      !ok)

let prop_freqs_sum_to_one =
  qcheck "relative frequencies sum to 1" QCheck.(pair symbols_gen (int_range 1 3))
    (fun (l, width) ->
      QCheck.assume (List.length l >= width);
      let db = Seq_db.of_trace ~width (trace8 l) in
      let total = Seq_db.fold db ~init:0.0 ~f:(fun acc k _ -> acc +. Seq_db.freq db k) in
      Float.abs (total -. 1.0) < 1e-9)

let () =
  Alcotest.run "seq_db"
    [
      ( "seq_db",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add counts" `Quick test_add_counts;
          Alcotest.test_case "of_trace" `Quick test_of_trace;
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "rare/common keys" `Quick test_rare_common_keys;
          Alcotest.test_case "threshold boundary" `Quick test_boundary_threshold;
          Alcotest.test_case "fold/iter agree" `Quick test_fold_iter_agree;
          prop_total_equals_windows;
          prop_every_window_member;
          prop_freqs_sum_to_one;
        ] );
    ]
