open Seqdiv_stream
open Seqdiv_test_support

let test_round_trip () =
  let t = trace8 [ 0; 7; 3; 3; 1; 2; 4; 5; 6; 0 ] in
  let t' = Trace_io.of_string (Trace_io.to_string t) in
  Alcotest.(check bool) "round trip" true (Trace.equal t t');
  Alcotest.(check int) "alphabet size preserved" 8
    (Alphabet.size (Trace.alphabet t'))

let test_round_trip_long () =
  (* Exercise the 16-per-line wrapping. *)
  let t = Trace.of_array alphabet8 (Array.init 100 (fun i -> i mod 8)) in
  Alcotest.(check bool) "long round trip" true
    (Trace.equal t (Trace_io.of_string (Trace_io.to_string t)))

let test_header () =
  let s = Trace_io.to_string (trace8 [ 1; 2 ]) in
  Alcotest.(check bool) "has header" true
    (String.length s > 11 && String.sub s 0 11 = "#alphabet 8")

let test_malformed_header () =
  Alcotest.check_raises "no header"
    (Seqdiv_stream.Parse_error.Error "Trace_io.of_string: malformed header")
    (fun () ->
      ignore (Trace_io.of_string "1 2 3"))

let test_bad_token () =
  Alcotest.check_raises "bad token"
    (Seqdiv_stream.Parse_error.Error "Trace_io.of_string: bad token \"x\"")
    (fun () ->
      ignore (Trace_io.of_string "#alphabet 8\n1 x 3"))

let test_out_of_range_symbol () =
  Alcotest.check_raises "symbol out of range"
    (Parse_error.Error "Trace_io.of_string: Trace.of_array: symbol 9 out of range")
    (fun () -> ignore (Trace_io.of_string "#alphabet 8\n1 9"))

let test_bad_alphabet_size () =
  Alcotest.check_raises "alphabet size"
    (Parse_error.Error "Trace_io.of_string: alphabet size out of range")
    (fun () -> ignore (Trace_io.of_string "#alphabet 900\n1 2"))

let test_file_round_trip () =
  let path = Filename.temp_file "seqdiv" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = trace8 [ 5; 4; 3; 2; 1 ] in
      Trace_io.to_file path t;
      Alcotest.(check bool) "file round trip" true
        (Trace.equal t (Trace_io.of_file path)))

let prop_round_trip =
  qcheck "string round trip"
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 7))
    (fun l ->
      let t = trace8 l in
      Trace.equal t (Trace_io.of_string (Trace_io.to_string t)))

let () =
  Alcotest.run "trace_io"
    [
      ( "trace_io",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "round trip long" `Quick test_round_trip_long;
          Alcotest.test_case "header" `Quick test_header;
          Alcotest.test_case "malformed header" `Quick test_malformed_header;
          Alcotest.test_case "bad token" `Quick test_bad_token;
          Alcotest.test_case "out of range" `Quick test_out_of_range_symbol;
          Alcotest.test_case "bad alphabet" `Quick test_bad_alphabet_size;
          Alcotest.test_case "file round trip" `Quick test_file_round_trip;
          prop_round_trip;
        ] );
    ]
