(* The append-mode journal's promises: a flush normally appends only
   the newly recorded lines (O(new cells) bytes, whatever the file
   already holds), compaction keeps the file bounded by the live entry
   count, the torn-tail and version-upgrade paths fall back to a safe
   whole-file rewrite, and none of it changes a single byte of a
   resumed run compared to the always-rewrite path. *)

open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_report

let with_path f =
  let path = Filename.temp_file "seqdiv-test-compaction" ".log" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let entry ~detector ~window ~anomaly_size outcome =
  { Journal.seed = 42; detector; window; anomaly_size; outcome }

let read_file path = In_channel.with_open_bin path In_channel.input_all

let cell_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.length l > 5 && String.sub l 0 5 = "cell ")
  |> List.length

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_append_roundtrip () =
  with_path (fun path ->
      let j = Journal.start ~context:"ctx" path in
      Journal.record j
        (entry ~detector:"stide" ~window:4 ~anomaly_size:2 (Outcome.Capable 0.5));
      Journal.flush j;
      Alcotest.(check int) "first flush writes the header" 1
        (Journal.compactions j);
      Journal.record j
        (entry ~detector:"stide" ~window:5 ~anomaly_size:2 (Outcome.Weak 0.25));
      Journal.flush j;
      Alcotest.(check int) "second flush appends" 1 (Journal.appends j);
      Alcotest.(check int) "…and does not rewrite" 1 (Journal.compactions j);
      let j' = Journal.start ~resume:true ~context:"ctx" path in
      Alcotest.(check int) "both entries recovered" 2 (Journal.recovered j');
      Alcotest.(check int) "clean file" 0 (Journal.dropped_lines j'))

let test_flush_is_o_new_cells () =
  (* The acceptance criterion: across a 10-resume session each flush
     must cost O(new cells) bytes — the old contents are a byte-exact
     prefix of the new, and the appended suffix is proportional to the
     cells recorded since the last flush, never to the file size. *)
  with_path (fun path ->
      (let j0 = Journal.start ~context:"ctx" path in
       Journal.record j0
         (entry ~detector:"seed" ~window:1 ~anomaly_size:1 Outcome.Blind);
       Journal.flush j0);
      for cycle = 1 to 10 do
        let j = Journal.start ~resume:true ~context:"ctx" path in
        let before = read_file path in
        let fresh = 3 in
        for k = 1 to fresh do
          Journal.record j
            (entry ~detector:"stide" ~window:(10 + k) ~anomaly_size:cycle
               (Outcome.Capable 0.125))
        done;
        Journal.flush j;
        let after = read_file path in
        Alcotest.(check bool)
          (Printf.sprintf "cycle %d: old bytes untouched" cycle)
          true
          (starts_with ~prefix:before after);
        let delta = String.length after - String.length before in
        Alcotest.(check bool)
          (Printf.sprintf "cycle %d: flush cost bounded by new cells (%dB)"
             cycle delta)
          true
          (delta > 0 && delta <= 120 * fresh);
        Alcotest.(check int)
          (Printf.sprintf "cycle %d: append path taken" cycle)
          1 (Journal.appends j);
        Alcotest.(check int)
          (Printf.sprintf "cycle %d: no rewrite" cycle)
          0 (Journal.compactions j)
      done;
      let j = Journal.start ~resume:true ~context:"ctx" path in
      Alcotest.(check int) "all cycles' entries survive" 31
        (Journal.recovered j))

let test_compaction_bounds_file () =
  (* Re-recording the same keys shadows old lines; the threshold must
     keep dead lines from accumulating past factor × live. *)
  with_path (fun path ->
      let factor = 2.0 in
      let j = Journal.start ~compact_factor:factor ~context:"ctx" path in
      for round = 1 to 20 do
        (* Same two keys every round — live count stays 2. *)
        Journal.record j
          (entry ~detector:"stide" ~window:4 ~anomaly_size:2
             (Outcome.Capable (float_of_int round /. 100.0)));
        Journal.record j
          (entry ~detector:"markov" ~window:4 ~anomaly_size:2
             (Outcome.Weak (float_of_int round /. 100.0)));
        Journal.flush j;
        let lines = cell_lines path in
        Alcotest.(check bool)
          (Printf.sprintf "round %d: %d cell line(s) within 2 live × %.1f"
             round lines factor)
          true
          (float_of_int lines <= factor *. 2.0)
      done;
      Alcotest.(check bool) "threshold actually triggered rewrites" true
        (Journal.compactions j > 1);
      Alcotest.(check bool) "…but plenty of flushes still appended" true
        (Journal.appends j > 0);
      (* Shadowing resolved newest-wins after compaction. *)
      let j' = Journal.start ~resume:true ~context:"ctx" path in
      match Journal.lookup j' ~seed:42 ~detector:"stide" ~window:4 ~anomaly_size:2 with
      | Some o ->
          Alcotest.(check bool) "newest record survives compaction" true
            (Outcome.equal o (Outcome.Capable 0.20))
      | None -> Alcotest.fail "live key lost by compaction")

let test_always_rewrite_factor_zero () =
  with_path (fun path ->
      let j = Journal.start ~compact_factor:0.0 ~context:"ctx" path in
      for w = 1 to 5 do
        Journal.record j
          (entry ~detector:"stide" ~window:w ~anomaly_size:2 Outcome.Blind);
        Journal.flush j
      done;
      Alcotest.(check int) "factor <= 0 never appends" 0 (Journal.appends j);
      Alcotest.(check int) "every flush rewrote" 5 (Journal.compactions j))

let test_torn_tail_forces_rewrite () =
  with_path (fun path ->
      (let j = Journal.start ~context:"ctx" path in
       for w = 1 to 3 do
         Journal.record j
           (entry ~detector:"stide" ~window:w ~anomaly_size:2
              (Outcome.Capable 0.5))
       done;
       Journal.flush j);
      let contents = read_file path in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub contents 0 (String.length contents - 10)));
      let j = Journal.start ~resume:true ~context:"ctx" path in
      Alcotest.(check int) "torn line dropped" 1 (Journal.dropped_lines j);
      (* Appending after the partial line would splice two records into
         one garbage line — the next flush must rewrite instead. *)
      Journal.record j
        (entry ~detector:"stide" ~window:9 ~anomaly_size:2 (Outcome.Weak 0.1));
      Journal.flush j;
      Alcotest.(check int) "repair took the rewrite path" 1
        (Journal.compactions j);
      Alcotest.(check int) "…not the append path" 0 (Journal.appends j);
      let j' = Journal.start ~resume:true ~context:"ctx" path in
      Alcotest.(check int) "file clean again" 0 (Journal.dropped_lines j');
      Alcotest.(check int) "live entries intact" 3 (Journal.recovered j'))

let test_v1_file_upgraded () =
  with_path (fun path ->
      (let j = Journal.start ~context:"ctx" path in
       Journal.record j
         (entry ~detector:"stide" ~window:4 ~anomaly_size:2 (Outcome.Capable 0.5));
       Journal.flush j);
      (* Rewrite the header to the previous version, keeping the
         line-identical cell records. *)
      let contents = read_file path in
      let v1 =
        match String.index_opt contents '\n' with
        | Some i ->
            "seqdiv-journal v1"
            ^ String.sub contents i (String.length contents - i)
        | None -> Alcotest.fail "journal file has no header line"
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc v1);
      let j = Journal.start ~resume:true ~context:"ctx" path in
      Alcotest.(check int) "v1 cells load" 1 (Journal.recovered j);
      Journal.record j
        (entry ~detector:"stide" ~window:5 ~anomaly_size:2 (Outcome.Weak 0.2));
      Journal.flush j;
      Alcotest.(check int) "upgrade is a rewrite, not an append" 1
        (Journal.compactions j);
      Alcotest.(check bool) "header is current again" true
        (starts_with ~prefix:"seqdiv-journal v2\n" (read_file path)))

(* --- byte-identity against the always-rewrite path over the engine ------ *)

let suite_cache = ref None

let suite () =
  match !suite_cache with
  | Some s -> s
  | None ->
      let s =
        Suite.build
          {
            (Suite.scaled_params ~train_len:30_000 ~background_len:1_500) with
            Suite.dw_max = 6;
          }
      in
      suite_cache := Some s;
      s

let detectors () =
  List.map Registry.find_exn [ "stide"; "tstide"; "markov"; "lnb" ]

let renderings maps = String.concat "\n" (List.map Ascii_map.render maps)

let interrupted_resume ~jobs ~compact_factor path =
  let context = "compaction-test" in
  let j = Journal.start ~compact_factor ~context path in
  let partial = match detectors () with d :: d' :: _ -> [ d; d' ] | _ -> [] in
  ignore
    (Experiment.all_maps ~engine:(Engine.create ~jobs ()) ~journal:j (suite ())
       partial);
  let j' = Journal.start ~resume:true ~compact_factor ~context path in
  let e = Engine.create ~jobs () in
  let maps =
    Experiment.all_maps ~engine:e ~journal:j' (suite ()) (detectors ())
  in
  ((Engine.stats e).Engine.cells_resumed, renderings maps)

let test_append_path_resumes_byte_identically () =
  let fresh =
    renderings
      (Experiment.all_maps ~engine:(Engine.create ()) (suite ()) (detectors ()))
  in
  List.iter
    (fun jobs ->
      let resumed_append, via_append =
        with_path (interrupted_resume ~jobs ~compact_factor:4.0)
      in
      let resumed_rewrite, via_rewrite =
        with_path (interrupted_resume ~jobs ~compact_factor:0.0)
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: something was resumed" jobs)
        true (resumed_append > 0);
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: both paths resume the same cells" jobs)
        resumed_rewrite resumed_append;
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d: append path matches fresh run" jobs)
        fresh via_append;
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d: …and the always-rewrite path" jobs)
        via_rewrite via_append)
    [ 1; 4 ]

let () =
  Alcotest.run "journal-compaction"
    [
      ( "append",
        [
          Alcotest.test_case "append roundtrip" `Quick test_append_roundtrip;
          Alcotest.test_case "flush is O(new cells)" `Quick
            test_flush_is_o_new_cells;
          Alcotest.test_case "compaction bounds the file" `Quick
            test_compaction_bounds_file;
          Alcotest.test_case "factor zero always rewrites" `Quick
            test_always_rewrite_factor_zero;
          Alcotest.test_case "torn tail forces rewrite" `Quick
            test_torn_tail_forces_rewrite;
          Alcotest.test_case "v1 file upgraded" `Quick test_v1_file_upgraded;
        ] );
      ( "resume",
        [
          Alcotest.test_case "append path resumes byte-identically" `Slow
            test_append_path_resumes_byte_identically;
        ] );
    ]
