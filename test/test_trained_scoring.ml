(* Unit tests for the Trained wrapper and the Scoring pipeline, using a
   stub detector with fully predictable behaviour. *)

open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_test_support

(* A stub detector: scores 1 exactly on windows whose first symbol is 7,
   0.5 on windows whose first symbol is 6, else 0. *)
module Stub : Detector.S = struct
  type model = { window : int }

  let name = "stub"
  let maximal_epsilon = 0.0
  let train ~window _trace = { window }
  let train_of_trie = None
  let compile = None
  let window m = m.window

  let score_range m trace ~lo ~hi =
    let lo, hi =
      Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m.window
        ~lo ~hi
    in
    let n = Stdlib.max 0 (hi - lo + 1) in
    let items =
      Array.init n (fun i ->
          let start = lo + i in
          let score =
            match Trace.get trace start with 7 -> 1.0 | 6 -> 0.5 | _ -> 0.0
          in
          { Response.start; cover = m.window; score })
    in
    Response.make ~detector:name ~window:m.window items

  let score m trace =
    let lo, hi =
      Detector.full_range ~trace_len:(Trace.length trace) ~window:m.window
    in
    score_range m trace ~lo ~hi
end

let stub = (module Stub : Detector.S)

let any_trace = trace8 [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_trained_accessors () =
  let t = Trained.train stub ~window:3 any_trace in
  Alcotest.(check string) "name" "stub" (Trained.name t);
  Alcotest.(check int) "window" 3 (Trained.window t);
  check_float "epsilon" ~epsilon:0.0 0.0 (Trained.maximal_epsilon t);
  check_float "alarm threshold" ~epsilon:0.0 1.0 (Trained.alarm_threshold t)

let test_trained_score_passthrough () =
  let t = Trained.train stub ~window:2 any_trace in
  let r = Trained.score t (trace8 [ 7; 0; 6; 0 ]) in
  let scores =
    Array.to_list (Array.map (fun i -> i.Response.score) r.Response.items)
  in
  Alcotest.(check (list (float 0.0))) "scores" [ 1.0; 0.0; 0.5 ] scores

let test_trained_score_range_passthrough () =
  let t = Trained.train stub ~window:2 any_trace in
  let r = Trained.score_range t (trace8 [ 7; 0; 6; 0 ]) ~lo:1 ~hi:2 in
  Alcotest.(check int) "two items" 2 (Response.length r)

(* A hand-built injection so the incident span is fully predictable. *)
let injection_at ~background_len ~position ~anomaly =
  let bg = Seqdiv_synth.Generator.background alphabet8 ~len:background_len ~phase:0 in
  let trace = Trace.insert bg ~pos:position (trace8 (Array.to_list anomaly)) in
  { Injector.trace; position; anomaly }

let test_incident_response_restricts () =
  let inj = injection_at ~background_len:100 ~position:50 ~anomaly:[| 7; 7 |] in
  let t = Trained.train stub ~window:4 any_trace in
  let r = Scoring.incident_response t inj in
  (* span = [50-3, 51] = 5 windows *)
  Alcotest.(check int) "span windows" 5 (Response.length r);
  Alcotest.(check int) "first start" 47 r.Response.items.(0).Response.start;
  Alcotest.(check int) "last start" 51
    r.Response.items.(Response.length r - 1).Response.start

let test_outcome_capable () =
  let inj = injection_at ~background_len:100 ~position:50 ~anomaly:[| 7 |] in
  let t = Trained.train stub ~window:3 any_trace in
  Alcotest.(check bool) "capable" true
    (Outcome.is_capable (Scoring.outcome t inj))

let test_outcome_weak () =
  let inj = injection_at ~background_len:100 ~position:50 ~anomaly:[| 6 |] in
  let t = Trained.train stub ~window:3 any_trace in
  (match Scoring.outcome t inj with
  | Outcome.Weak m -> check_float "max 0.5" ~epsilon:0.0 0.5 m
  | o -> Alcotest.fail ("expected weak, got " ^ Outcome.to_string o))

let test_outcome_blind () =
  (* Anomaly symbol scores 0 under the stub: blind. *)
  let inj = injection_at ~background_len:100 ~position:50 ~anomaly:[| 3 |] in
  let t = Trained.train stub ~window:3 any_trace in
  Alcotest.(check bool) "blind" true
    (Outcome.is_blind (Scoring.outcome t inj))

let test_outcome_uses_span_only () =
  (* A 7 far outside the anomaly must not make the outcome capable. *)
  let bg = Seqdiv_synth.Generator.background alphabet8 ~len:100 ~phase:0 in
  let with_seven = Trace.insert bg ~pos:10 (trace8 [ 7 ]) in
  (* Position chosen so the span's window-start symbols avoid the stub's
     trigger symbols 6 and 7. *)
  let trace = Trace.insert with_seven ~pos:84 (trace8 [ 3 ]) in
  let inj = { Injector.trace; position = 84; anomaly = [| 3 |] } in
  let t = Trained.train stub ~window:3 any_trace in
  Alcotest.(check bool) "outside-span response ignored" true
    (Outcome.is_blind (Scoring.outcome t inj))

let () =
  Alcotest.run "trained_scoring"
    [
      ( "trained",
        [
          Alcotest.test_case "accessors" `Quick test_trained_accessors;
          Alcotest.test_case "score passthrough" `Quick test_trained_score_passthrough;
          Alcotest.test_case "score_range passthrough" `Quick
            test_trained_score_range_passthrough;
        ] );
      ( "scoring",
        [
          Alcotest.test_case "incident response restricts" `Quick
            test_incident_response_restricts;
          Alcotest.test_case "capable" `Quick test_outcome_capable;
          Alcotest.test_case "weak" `Quick test_outcome_weak;
          Alcotest.test_case "blind" `Quick test_outcome_blind;
          Alcotest.test_case "span only" `Quick test_outcome_uses_span_only;
        ] );
    ]
