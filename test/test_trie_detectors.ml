(* Byte-identity of the trie-backed detector hot paths.

   Each property rebuilds a detector the slow, obviously-correct way —
   int-list-keyed hash tables filled by a literal window scan, no
   strings, no tries — and demands the shipped Stide / t-stide / Markov
   implementations produce Response arrays that are equal to the bit,
   score floats included, across random traces, windows 2..15 and
   alphabets 2..300 (the trie path has no 256-symbol ceiling).  The
   same check is run against models built as views of a shared deeper
   trie, the engine's train-once layout. *)

open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_test_support

let window_slice data pos len = Array.to_list (Array.sub data pos len)

(* --- int-list-keyed reference implementations -------------------------- *)

let ref_db trace ~width =
  let tbl : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let data = Trace.to_array trace in
  let total = ref 0 in
  Trace.iter_windows trace ~width (fun pos ->
      let k = window_slice data pos width in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k));
      incr total);
  (tbl, !total)

let ref_stide_scores training test ~window =
  let tbl, _ = ref_db training ~width:window in
  let data = Trace.to_array test in
  Array.init
    (Trace.length test - window + 1)
    (fun start ->
      if Hashtbl.mem tbl (window_slice data start window) then 0.0 else 1.0)

let ref_tstide_scores training test ~window ~threshold =
  let tbl, total = ref_db training ~width:window in
  let data = Trace.to_array test in
  Array.init
    (Trace.length test - window + 1)
    (fun start ->
      let c =
        Option.value ~default:0
          (Hashtbl.find_opt tbl (window_slice data start window))
      in
      let foreign = c = 0 in
      let rare =
        c > 0 && float_of_int c /. float_of_int total < threshold
      in
      if foreign || rare then 1.0 else 0.0)

let ref_markov_scores training test ~window =
  (* context table exactly as the pre-trie detector built it: one scan
     of width-[window] windows, conditional counts per context *)
  let table : (int list, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let totals : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let data = Trace.to_array training in
  let ctx_len = window - 1 in
  Trace.iter_windows training ~width:window (fun pos ->
      let ctx = window_slice data pos ctx_len in
      let next = data.(pos + ctx_len) in
      let counts =
        match Hashtbl.find_opt table ctx with
        | Some c -> c
        | None ->
            let c = Hashtbl.create 8 in
            Hashtbl.add table ctx c;
            c
      in
      Hashtbl.replace counts next
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts next));
      Hashtbl.replace totals ctx
        (1 + Option.value ~default:0 (Hashtbl.find_opt totals ctx)));
  let tdata = Trace.to_array test in
  Array.init
    (Trace.length test - window + 1)
    (fun start ->
      let ctx = window_slice tdata start ctx_len in
      let next = tdata.(start + ctx_len) in
      match Hashtbl.find_opt table ctx with
      | None -> 1.0
      | Some counts ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts next) in
          let total = Hashtbl.find totals ctx in
          1.0 -. (float_of_int c /. float_of_int total))

(* --- comparison -------------------------------------------------------- *)

let scores_of (r : Response.t) =
  Array.map (fun (it : Response.item) -> it.Response.score) r.Response.items

let identical name expected (r : Response.t) ~window =
  if Array.length expected <> Array.length r.Response.items then
    QCheck.Test.fail_reportf "%s: %d items, expected %d" name
      (Array.length r.Response.items)
      (Array.length expected);
  Array.iteri
    (fun i (it : Response.item) ->
      if it.Response.start <> i || it.Response.cover <> window then
        QCheck.Test.fail_reportf "%s: item %d extent (start=%d cover=%d)" name
          i it.Response.start it.Response.cover;
      (* byte identity: exact float equality, not a tolerance *)
      if not (Float.equal it.Response.score expected.(i)) then
        QCheck.Test.fail_reportf "%s: item %d score %.17g, expected %.17g" name
          i it.Response.score expected.(i))
    r.Response.items;
  true

(* window 2..15, alphabet 2..300 (well past the old 256-symbol
   ceiling), training and test traces of independent lengths *)
let case_gen =
  QCheck.make
    ~print:(fun (k, w, train, test) ->
      Printf.sprintf "alphabet=%d window=%d train=[%s] test=[%s]" k w
        (String.concat ";" (List.map string_of_int train))
        (String.concat ";" (List.map string_of_int test)))
    QCheck.Gen.(
      int_range 2 300 >>= fun k ->
      int_range 2 15 >>= fun w ->
      list_size (int_range (w + 1) 120) (int_bound (k - 1)) >>= fun train ->
      list_size (int_range w 120) (int_bound (k - 1)) >>= fun test ->
      return (k, w, train, test))

let traces_of (k, _, train, test) =
  let alphabet = Alphabet.make k in
  (Trace.of_list alphabet train, Trace.of_list alphabet test)

let prop_stide =
  qcheck ~count:150 "stide = int-list reference (bit-exact)" case_gen
    (fun ((_, w, _, _) as case) ->
      let training, test = traces_of case in
      let expected = ref_stide_scores training test ~window:w in
      identical "stide" expected (Stide.score (Stide.train ~window:w training) test)
        ~window:w)

let prop_tstide =
  qcheck ~count:150 "tstide = int-list reference (bit-exact)" case_gen
    (fun ((_, w, _, _) as case) ->
      let training, test = traces_of case in
      let expected =
        ref_tstide_scores training test ~window:w
          ~threshold:Tstide.default_threshold
      in
      identical "tstide" expected
        (Tstide.score (Tstide.train ~window:w training) test)
        ~window:w)

let prop_markov =
  qcheck ~count:150 "markov = int-list reference (bit-exact)" case_gen
    (fun ((_, w, _, _) as case) ->
      let training, test = traces_of case in
      let expected = ref_markov_scores training test ~window:w in
      identical "markov" expected
        (Markov.score (Markov.train ~window:w training) test)
        ~window:w)

(* The engine layout: one trie, deeper than any single window, viewed
   by all three detectors — must equal per-detector training bit for
   bit. *)
let prop_shared_trie =
  qcheck ~count:150 "shared deeper trie = per-window training" case_gen
    (fun ((_, w, _, _) as case) ->
      let training, test = traces_of case in
      let trie = Seq_trie.of_trace ~max_len:(w + 2) training in
      identical "stide/of_trie"
        (scores_of (Stide.score (Stide.train ~window:w training) test))
        (Stide.score (Stide.of_trie trie ~window:w) test)
        ~window:w
      && identical "tstide/of_trie"
           (scores_of (Tstide.score (Tstide.train ~window:w training) test))
           (Tstide.score (Tstide.of_trie trie ~window:w) test)
           ~window:w
      && identical "markov/of_trie"
           (scores_of (Markov.score (Markov.train ~window:w training) test))
           (Markov.score (Markov.of_trie trie ~window:w) test)
           ~window:w)

(* score_range on the trie path still clamps and restricts exactly. *)
let prop_score_range =
  qcheck ~count:80 "score_range = restricted score" case_gen
    (fun ((_, w, _, _) as case) ->
      let training, test = traces_of case in
      let m = Stide.train ~window:w training in
      let full = Stide.score m test in
      let n = Array.length full.Response.items in
      let lo = n / 3 and hi = 2 * n / 3 in
      let part = Stide.score_range m test ~lo ~hi in
      Array.length part.Response.items = Stdlib.max 0 (hi - lo + 1)
      && Array.for_all
           (fun (it : Response.item) ->
             Float.equal it.Response.score
               full.Response.items.(it.Response.start).Response.score)
           part.Response.items)

let () =
  Alcotest.run "trie_detectors"
    [
      ( "byte-identity",
        [
          prop_stide;
          prop_tstide;
          prop_markov;
          prop_shared_trie;
          prop_score_range;
        ] );
    ]
