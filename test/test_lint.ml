(* The rule engine is a pure function from a file set to diagnostics,
   so every fixture here is an inline string.  Each test builds a tiny
   virtual tree, runs the engine, and checks which rules fire and
   where. *)

open Seqdiv_analysis

let file path content = Source.make ~path ~content

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else at (i + 1)
  in
  at 0

let run_on files = Rules.run files

let rules_of diags = List.map (fun d -> d.Diagnostic.rule) diags

let find_rule rule diags =
  List.filter (fun d -> d.Diagnostic.rule = rule) diags

(* A lib module that breaks no rule: total, silent, deterministic. *)
let clean_ml = "let double x = 2 * x\n"
let clean_mli = "val double : int -> int\n"

let clean_pair name =
  [
    file ("lib/" ^ name ^ ".ml") clean_ml;
    file ("lib/" ^ name ^ ".mli") clean_mli;
  ]

let test_clean_tree () =
  let diags = run_on (clean_pair "a" @ clean_pair "b") in
  Alcotest.(check (list string)) "no diagnostics" [] (rules_of diags)

(* R0: syntax errors surface as diagnostics, never exceptions. *)
let test_syntax_error () =
  let diags =
    run_on [ file "lib/broken.ml" "let x = (\n"; file "lib/broken.mli" "" ]
  in
  match find_rule "R0" diags with
  | [ d ] ->
      Alcotest.(check string) "file" "lib/broken.ml" d.Diagnostic.file;
      Alcotest.(check bool) "is error" true (Diagnostic.is_error d)
  | ds -> Alcotest.failf "expected one R0 diagnostic, got %d" (List.length ds)

(* R1: ambient randomness in lib code. *)
let test_r1_random () =
  let bad = "let roll () = Random.int 6\n" in
  let diags =
    run_on [ file "lib/dice.ml" bad; file "lib/dice.mli" "val roll : unit -> int\n" ]
  in
  match find_rule "R1" diags with
  | [ d ] ->
      Alcotest.(check string) "file" "lib/dice.ml" d.Diagnostic.file;
      Alcotest.(check int) "line" 1 d.Diagnostic.line;
      Alcotest.(check string) "name" "determinism" d.Diagnostic.rule_name
  | ds -> Alcotest.failf "expected one R1 diagnostic, got %d" (List.length ds)

(* R1 also covers qualified Stdlib paths and clock reads. *)
let test_r1_qualified_and_clock () =
  let bad = "let a () = Stdlib.Random.bits ()\nlet b () = Sys.time ()\n" in
  let diags =
    run_on
      [
        file "lib/clocky.ml" bad;
        file "lib/clocky.mli" "val a : unit -> int\nval b : unit -> float\n";
      ]
  in
  let r1 = find_rule "R1" diags in
  Alcotest.(check int) "two findings" 2 (List.length r1);
  Alcotest.(check (list int)) "lines" [ 1; 2 ]
    (List.map (fun d -> d.Diagnostic.line) r1)

(* R1: order-sensitive hash traversal. *)
let test_r1_hashtbl_iter () =
  let bad = "let dump t f = Hashtbl.iter f t\n" in
  let diags =
    run_on
      [
        file "lib/h.ml" bad;
        file "lib/h.mli" "val dump : ('a, 'b) Hashtbl.t -> ('a -> 'b -> unit) -> unit\n";
      ]
  in
  Alcotest.(check int) "one R1" 1 (List.length (find_rule "R1" diags))

(* The same constructs are fine outside lib/. *)
let test_r1_not_in_bin () =
  let diags = run_on [ file "bin/main.ml" "let () = Printf.printf \"%d\" (Random.int 6)\n" ] in
  Alcotest.(check (list string)) "bin is exempt" [] (rules_of diags)

(* R2: printing from library code. *)
let test_r2_print () =
  let bad = "let shout () = print_endline \"hi\"\nlet log () = Printf.eprintf \"x\"\n" in
  let diags =
    run_on
      [
        file "lib/noisy.ml" bad;
        file "lib/noisy.mli" "val shout : unit -> unit\nval log : unit -> unit\n";
      ]
  in
  let r2 = find_rule "R2" diags in
  Alcotest.(check int) "two findings" 2 (List.length r2);
  Alcotest.(check string) "name" "output-hygiene"
    (List.hd r2).Diagnostic.rule_name

(* R3: partial functions. *)
let test_r3_partiality () =
  let bad =
    "let a () = failwith \"boom\"\n\
     let b () = assert false\n\
     let c o = Option.get o\n\
     let d l = List.hd l\n"
  in
  let diags =
    run_on
      [
        file "lib/partial.ml" bad;
        file "lib/partial.mli"
          "val a : unit -> 'a\nval b : unit -> 'a\nval c : 'a option -> 'a\nval d : 'a list -> 'a\n";
      ]
  in
  let r3 = find_rule "R3" diags in
  Alcotest.(check (list int)) "all four lines" [ 1; 2; 3; 4 ]
    (List.map (fun d -> d.Diagnostic.line) r3)

(* Whitelist: an allow comment silences the line below, and only for
   the named rule. *)
let test_whitelist_suppresses () =
  let src =
    "(* lint: allow partiality -- documented precondition *)\n\
     let a () = failwith \"boom\"\n"
  in
  let diags =
    run_on [ file "lib/ok.ml" src; file "lib/ok.mli" "val a : unit -> 'a\n" ]
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of diags)

let test_whitelist_same_line () =
  let src =
    "let a () = failwith \"boom\" (* lint: allow R3 — fixture *)\n"
  in
  let diags =
    run_on [ file "lib/ok2.ml" src; file "lib/ok2.mli" "val a : unit -> 'a\n" ]
  in
  Alcotest.(check (list string)) "suppressed by id token" [] (rules_of diags)

let test_whitelist_wrong_rule () =
  let src =
    "(* lint: allow determinism — deliberately the wrong rule *)\n\
     let a () = failwith \"boom\"\n"
  in
  let diags =
    run_on [ file "lib/no.ml" src; file "lib/no.mli" "val a : unit -> 'a\n" ]
  in
  Alcotest.(check (list string)) "R3 still fires" [ "R3" ] (rules_of diags)

(* R4: a lib .ml with no matching .mli. *)
let test_r4_missing_mli () =
  let diags = run_on [ file "lib/orphan.ml" clean_ml ] in
  match find_rule "R4" diags with
  | [ d ] ->
      Alcotest.(check string) "file" "lib/orphan.ml" d.Diagnostic.file;
      Alcotest.(check int) "line" 1 d.Diagnostic.line
  | ds -> Alcotest.failf "expected one R4 diagnostic, got %d" (List.length ds)

let test_r4_not_for_test_role () =
  let diags = run_on [ file "test/test_x.ml" clean_ml ] in
  Alcotest.(check (list string)) "tests need no .mli" [] (rules_of diags)

(* R5: modules packed in the registry must expose the contract. *)
let registry_ml =
  "let all = [ (module Good : Detector.S); (module Bad : Detector.S) ]\n"

let good_mli =
  "val name : string\n\
   val train : window:int -> int -> int\n\
   val score : int -> int -> int\n"

let bad_mli = "val name : string\n"

let r5_tree =
  [
    file "lib/detectors/registry.ml" registry_ml;
    file "lib/detectors/registry.mli" "val all : int list\n";
    file "lib/detectors/good.ml" clean_ml;
    file "lib/detectors/good.mli" good_mli;
    file "lib/detectors/bad.ml" clean_ml;
    file "lib/detectors/bad.mli" bad_mli;
  ]

let test_r5_contract () =
  let r5 = find_rule "R5" (run_on r5_tree) in
  match r5 with
  | [ d ] ->
      Alcotest.(check string) "reported at the registry"
        "lib/detectors/registry.ml" d.Diagnostic.file;
      Alcotest.(check bool) "names the module" true
        (contains_sub d.Diagnostic.message "Bad")
  | ds -> Alcotest.failf "expected one R5 diagnostic, got %d" (List.length ds)

let test_r5_include_detector_s () =
  (* The repo's own idiom: [include Detector.S] satisfies the contract. *)
  let tree =
    [
      file "lib/detectors/registry.ml"
        "let all = [ (module Incl : Detector.S) ]\n";
      file "lib/detectors/registry.mli" "val all : int list\n";
      file "lib/detectors/incl.ml" clean_ml;
      file "lib/detectors/incl.mli" "include Detector.S\n";
    ]
  in
  Alcotest.(check (list string)) "include satisfies R5" []
    (rules_of (run_on tree))

(* Diagnostics render as file:line:col with the rule named — what the
   acceptance check greps for. *)
let test_diagnostic_rendering () =
  let diags =
    run_on
      [ file "lib/dice.ml" "let roll () = Random.int 6\n";
        file "lib/dice.mli" "val roll : unit -> int\n" ]
  in
  match diags with
  | [ d ] ->
      let s = Diagnostic.to_string d in
      Alcotest.(check bool) "has position" true
        (contains_sub s "lib/dice.ml:1:");
      Alcotest.(check bool) "names the rule" true
        (contains_sub s "R1")
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

(* R6: concurrency primitives in ordinary lib code. *)
let test_r6_domain_in_lib () =
  let bad = "let go f = Domain.join (Domain.spawn f)\n" in
  let diags =
    run_on
      [ file "lib/foo.ml" bad; file "lib/foo.mli" "val go : (unit -> 'a) -> 'a\n" ]
  in
  match find_rule "R6" diags with
  | d :: _ ->
      Alcotest.(check string) "file" "lib/foo.ml" d.Diagnostic.file;
      Alcotest.(check string) "name" "concurrency" d.Diagnostic.rule_name
  | [] -> Alcotest.fail "expected an R6 diagnostic"

(* R6 exempts the worker pool itself. *)
let test_r6_exempts_pool () =
  let body = "let go f = Domain.join (Domain.spawn f)\nlet c = Atomic.make 0\n" in
  let diags =
    run_on
      [
        file "lib/util/pool.ml" body;
        file "lib/util/pool.mli"
          "val go : (unit -> 'a) -> 'a\nval c : int Atomic.t\n";
      ]
  in
  Alcotest.(check (list string)) "no R6 in pool" []
    (rules_of (find_rule "R6" diags))

(* R6 is a library rule; executables may use Domain freely. *)
let test_r6_not_in_bin () =
  let diags =
    run_on [ file "bin/main.ml" "let () = Domain.join (Domain.spawn ignore)\n" ]
  in
  Alcotest.(check (list string)) "no R6 in bin" []
    (rules_of (find_rule "R6" diags))

(* R6 honours the standard whitelist comment. *)
let test_r6_whitelist () =
  let body =
    "(* lint: allow concurrency — measured fence *)\n\
     let c = Atomic.make 0\n"
  in
  let diags =
    run_on [ file "lib/fence.ml" body; file "lib/fence.mli" "val c : int Atomic.t\n" ]
  in
  Alcotest.(check (list string)) "suppressed" []
    (rules_of (find_rule "R6" diags))

(* R7: string-key lookups inside a detector score path. *)
let r7_bad_ml =
  "let score_range m trace lo hi =\n\
  \  let key = Trace.key trace ~pos:lo ~len:hi in\n\
  \  Seq_db.mem m key\n\
   let score m trace = score_range m trace 0 0\n"

let r7_mli = "val score_range : 'a -> 'b -> int -> int -> bool\nval score : 'a -> 'b -> bool\n"

let test_r7_score_path () =
  let diags =
    run_on
      [ file "lib/detectors/det.ml" r7_bad_ml;
        file "lib/detectors/det.mli" r7_mli ]
  in
  let r7 = find_rule "R7" diags in
  Alcotest.(check int) "two findings" 2 (List.length r7);
  Alcotest.(check (list int)) "lines" [ 2; 3 ]
    (List.map (fun d -> d.Diagnostic.line) r7);
  Alcotest.(check string) "name" "hot-path" (List.hd r7).Diagnostic.rule_name

(* Train-time key building is legitimate: R7 only guards score paths. *)
let test_r7_train_exempt () =
  let src =
    "let train ~window trace =\n\
    \  ignore window;\n\
    \  Trace.key trace ~pos:0 ~len:3\n"
  in
  let diags =
    run_on
      [ file "lib/detectors/tr.ml" src;
        file "lib/detectors/tr.mli" "val train : window:int -> 'a -> string\n" ]
  in
  Alcotest.(check (list string)) "no R7 outside score" []
    (rules_of (find_rule "R7" diags))

(* The rule is scoped to detector directories. *)
let test_r7_only_in_detectors () =
  let src = "let score_range t = Trace.key t ~pos:0 ~len:3\n" in
  let diags =
    run_on
      [ file "lib/stream/s.ml" src;
        file "lib/stream/s.mli" "val score_range : 'a -> string\n" ]
  in
  Alcotest.(check (list string)) "no R7 outside lib/detectors" []
    (rules_of (find_rule "R7" diags))

(* R7 honours the standard whitelist comment. *)
let test_r7_whitelist () =
  let src =
    "let score m k =\n\
    \  (* lint: allow hot-path — diagnostic slow path *)\n\
    \  Seq_db.count m k\n"
  in
  let diags =
    run_on
      [ file "lib/detectors/wl.ml" src;
        file "lib/detectors/wl.mli" "val score : 'a -> string -> int\n" ]
  in
  Alcotest.(check (list string)) "suppressed" []
    (rules_of (find_rule "R7" diags))

(* Hash lookups in a score path are the replaced backend. *)
let test_r7_hashtbl () =
  let src = "let score m k = Hashtbl.find_opt m k\n" in
  let diags =
    run_on
      [ file "lib/detectors/ht.ml" src;
        file "lib/detectors/ht.mli" "val score : ('a, 'b) Hashtbl.t -> 'a -> 'b option\n" ]
  in
  Alcotest.(check int) "one finding" 1 (List.length (find_rule "R7" diags))

(* The cursor API is exactly what score paths should use. *)
let test_r7_cursor_clean () =
  let src = "let score_range m a pos = Seq_db.mem_at m a ~pos\n" in
  let diags =
    run_on
      [ file "lib/detectors/cur.ml" src;
        file "lib/detectors/cur.mli"
          "val score_range : 'a -> int array -> int -> bool\n" ]
  in
  Alcotest.(check (list string)) "cursor API clean" []
    (rules_of (find_rule "R7" diags))

(* R8: catch-all exception handlers swallow faults the supervisor
   should see. *)
let test_r8_try_wildcard () =
  let src =
    "let a f = try f () with _ -> 0\n\
     let b f = try f () with e -> ignore e; 0\n"
  in
  let diags =
    run_on
      [ file "lib/sw.ml" src;
        file "lib/sw.mli" "val a : (unit -> int) -> int\nval b : (unit -> int) -> int\n" ]
  in
  let r8 = find_rule "R8" diags in
  Alcotest.(check (list int)) "both handlers" [ 1; 2 ]
    (List.map (fun d -> d.Diagnostic.line) r8);
  Alcotest.(check string) "name" "swallow" (List.hd r8).Diagnostic.rule_name

(* Match-time custody counts too: [match ... with exception e -> ...]. *)
let test_r8_match_exception () =
  let src = "let a f = match f () with v -> v | exception _ -> 0\n" in
  let diags =
    run_on
      [ file "lib/swm.ml" src;
        file "lib/swm.mli" "val a : (unit -> int) -> int\n" ]
  in
  Alcotest.(check int) "one finding" 1 (List.length (find_rule "R8" diags))

(* Naming the exceptions you expect is the sanctioned shape. *)
let test_r8_named_exception_clean () =
  let src =
    "let a f = try f () with Not_found -> 0 | Failure _ -> 1\n\
     let b f = match f () with v -> v | exception Exit -> 0\n"
  in
  let diags =
    run_on
      [ file "lib/swok.ml" src;
        file "lib/swok.mli" "val a : (unit -> int) -> int\nval b : (unit -> int) -> int\n" ]
  in
  Alcotest.(check (list string)) "named handlers clean" []
    (rules_of (find_rule "R8" diags))

(* The fault layer is exactly the module allowed this custody. *)
let test_r8_exempts_fault () =
  let src = "let a f = try f () with e -> ignore e; 0\n" in
  let diags =
    run_on
      [ file "lib/core/fault.ml" src;
        file "lib/core/fault.mli" "val a : (unit -> int) -> int\n" ]
  in
  Alcotest.(check (list string)) "fault.ml exempt" []
    (rules_of (find_rule "R8" diags))

(* R8 honours the standard whitelist comment. *)
let test_r8_whitelist () =
  let src =
    "let a f =\n\
    \  (* lint: allow swallow — best-effort cleanup *)\n\
    \  try f () with _ -> ()\n"
  in
  let diags =
    run_on
      [ file "lib/swwl.ml" src;
        file "lib/swwl.mli" "val a : (unit -> unit) -> unit\n" ]
  in
  Alcotest.(check (list string)) "suppressed" []
    (rules_of (find_rule "R8" diags))

(* R8 is a library rule; executables keep their top-level handlers. *)
let test_r8_not_in_bin () =
  let diags =
    run_on [ file "bin/main.ml" "let () = try () with _ -> ()\n" ] in
  Alcotest.(check (list string)) "no R8 in bin" []
    (rules_of (find_rule "R8" diags))

(* --- R9: checkpoint coverage over the whole-program call graph --------- *)

(* A detector score entry point that loops without ever reaching
   Deadline.checkpoint — the seeded violation. *)
let r9_bad_ml =
  "let score_range m trace lo hi =\n\
  \  let acc = Array.make 1 0 in\n\
  \  for i = lo to hi do acc.(0) <- acc.(0) + m + i done;\n\
  \  ignore trace;\n\
  \  acc.(0)\n"

let test_r9_missing_checkpoint () =
  let diags = run_on [ file "lib/detectors/ck.ml" r9_bad_ml ] in
  match find_rule "R9" diags with
  | [ d ] ->
      Alcotest.(check string) "file" "lib/detectors/ck.ml" d.Diagnostic.file;
      Alcotest.(check int) "at the binding" 1 d.Diagnostic.line;
      Alcotest.(check string) "name" "checkpoint" d.Diagnostic.rule_name;
      Alcotest.(check bool) "names the function" true
        (contains_sub d.Diagnostic.message "score_range")
  | ds -> Alcotest.failf "expected one R9 diagnostic, got %d" (List.length ds)

(* The same loop with a checkpoint inside is the sanctioned shape. *)
let test_r9_checkpointed_clean () =
  let src =
    "let score_range m trace lo hi =\n\
    \  let acc = Array.make 1 0 in\n\
    \  for i = lo to hi do\n\
    \    Deadline.checkpoint ();\n\
    \    acc.(0) <- acc.(0) + m + i\n\
    \  done;\n\
    \  ignore trace;\n\
    \  acc.(0)\n"
  in
  let diags = run_on [ file "lib/detectors/ck2.ml" src ] in
  Alcotest.(check (list string)) "checkpointed loop clean" []
    (rules_of (find_rule "R9" diags))

(* A guarded caller is enough: the loop itself need not checkpoint when
   every hot path into it already does. *)
let test_r9_guarded_by_caller () =
  let src =
    "let helper n =\n\
    \  let acc = Array.make 1 0 in\n\
    \  for i = 0 to n do acc.(0) <- acc.(0) + i done;\n\
    \  acc.(0)\n\
     let score_range m trace lo hi =\n\
    \  Deadline.checkpoint ();\n\
    \  ignore trace;\n\
    \  helper (m + lo + hi)\n"
  in
  let diags = run_on [ file "lib/detectors/ck3.ml" src ] in
  Alcotest.(check (list string)) "guarded via the caller" []
    (rules_of (find_rule "R9" diags))

(* R9 honours the standard whitelist comment. *)
let test_r9_whitelist () =
  let src =
    "(* lint: allow checkpoint — fixture loop is bounded *)\n" ^ r9_bad_ml
  in
  let diags = run_on [ file "lib/detectors/ck4.ml" src ] in
  Alcotest.(check (list string)) "suppressed" []
    (rules_of (find_rule "R9" diags))

(* Loops unreachable from any train/score root are not R9's business. *)
let test_r9_cold_loop_exempt () =
  let src =
    "let tabulate n =\n\
    \  let acc = Array.make 1 0 in\n\
    \  for i = 0 to n do acc.(0) <- acc.(0) + i done;\n\
    \  acc.(0)\n"
  in
  let diags = run_on [ file "lib/report/tab.ml" src ] in
  Alcotest.(check (list string)) "cold code exempt" []
    (rules_of (find_rule "R9" diags))

(* The flat-automaton compiler is a declared hot root: its loops need
   checkpoint coverage like any train-phase loop. *)
let r9_flat_bad_ml =
  "let compile trie depth =\n\
  \  let states = Array.make 4 0 in\n\
  \  for i = 0 to depth do states.(0) <- states.(0) + i + trie done;\n\
  \  states.(0)\n"

let test_r9_flat_compile_uncheckpointed () =
  let diags = run_on [ file "lib/stream/flat_automaton.ml" r9_flat_bad_ml ] in
  match find_rule "R9" diags with
  | [ d ] ->
      Alcotest.(check string) "file" "lib/stream/flat_automaton.ml"
        d.Diagnostic.file;
      Alcotest.(check bool) "names the compiler" true
        (contains_sub d.Diagnostic.message "compile")
  | ds -> Alcotest.failf "expected one R9 diagnostic, got %d" (List.length ds)

let test_r9_flat_compile_checkpointed () =
  let src =
    "let compile trie depth =\n\
    \  let states = Array.make 4 0 in\n\
    \  for i = 0 to depth do\n\
    \    Deadline.checkpoint ();\n\
    \    states.(0) <- states.(0) + i + trie\n\
    \  done;\n\
    \  states.(0)\n"
  in
  let diags = run_on [ file "lib/stream/flat_automaton.ml" src ] in
  Alcotest.(check (list string)) "checkpointed compiler clean" []
    (rules_of (find_rule "R9" diags))

(* --- R10: fault custody of raisable constructors ----------------------- *)

let r10_det_ml =
  "let train ~window trace =\n\
  \  ignore window; ignore trace;\n\
  \  (* lint: allow partiality — fixture raise *)\n\
  \  failwith \"seeded\"\n"

let test_r10_unmapped_constructor () =
  let diags =
    run_on
      [
        file "lib/core/fault.ml" "let classify = function _ -> 1\n";
        file "lib/detectors/d.ml" r10_det_ml;
      ]
  in
  match find_rule "R10" diags with
  | [ d ] ->
      Alcotest.(check string) "reported at classify" "lib/core/fault.ml"
        d.Diagnostic.file;
      Alcotest.(check string) "name" "fault-custody" d.Diagnostic.rule_name;
      Alcotest.(check bool) "names the constructor" true
        (contains_sub d.Diagnostic.message "Failure");
      Alcotest.(check bool) "cites the raise site" true
        (contains_sub d.Diagnostic.message "lib/detectors/d.ml")
  | ds -> Alcotest.failf "expected one R10 diagnostic, got %d" (List.length ds)

(* An explicit case for the constructor restores custody. *)
let test_r10_mapped_clean () =
  let diags =
    run_on
      [
        file "lib/core/fault.ml"
          "let classify = function Failure _ -> 0 | _ -> 1\n";
        file "lib/detectors/d.ml" r10_det_ml;
      ]
  in
  Alcotest.(check (list string)) "mapped constructor clean" []
    (rules_of (find_rule "R10" diags))

(* R10 honours the standard whitelist comment. *)
let test_r10_whitelist () =
  let diags =
    run_on
      [
        file "lib/core/fault.ml"
          "(* lint: allow fault-custody — fixture *)\n\
           let classify = function _ -> 1\n";
        file "lib/detectors/d.ml" r10_det_ml;
      ]
  in
  Alcotest.(check (list string)) "suppressed" []
    (rules_of (find_rule "R10" diags))

(* --- R11: allocation on the per-window scoring path -------------------- *)

let r11_bad_ml =
  "let score_range m trace lo hi =\n\
  \  Array.init (hi - lo) (fun i -> (m, Trace.get trace (lo + i)))\n"

let test_r11_alloc_per_window () =
  let diags = run_on [ file "lib/detectors/al.ml" r11_bad_ml ] in
  match find_rule "R11" diags with
  | d :: _ ->
      Alcotest.(check string) "file" "lib/detectors/al.ml" d.Diagnostic.file;
      Alcotest.(check int) "at the tuple" 2 d.Diagnostic.line;
      Alcotest.(check string) "name" "allocation" d.Diagnostic.rule_name
  | [] -> Alcotest.fail "expected an R11 diagnostic"

(* Scalar, loop-free scoring allocates nothing. *)
let test_r11_scalar_clean () =
  let src = "let score_range m trace lo hi = m + lo + hi + Trace.get trace lo\n" in
  let diags = run_on [ file "lib/detectors/al2.ml" src ] in
  Alcotest.(check (list string)) "scalar path clean" []
    (rules_of (find_rule "R11" diags))

(* Allocation at the top of the call, outside any loop, is the
   preallocation idiom R11 exists to encourage. *)
let test_r11_preallocation_clean () =
  let src =
    "let score_range m trace lo hi =\n\
    \  let out = Array.make (hi - lo) 0 in\n\
    \  for i = lo to hi - 1 do\n\
    \    Deadline.checkpoint ();\n\
    \    out.(i - lo) <- m + Trace.get trace i\n\
    \  done;\n\
    \  out\n"
  in
  let diags = run_on [ file "lib/detectors/al3.ml" src ] in
  Alcotest.(check (list string)) "preallocation clean" []
    (rules_of (find_rule "R11" diags))

(* R11 honours the standard whitelist comment. *)
let test_r11_whitelist () =
  let src =
    "let score_range m trace lo hi =\n\
    \  (* lint: allow allocation — fixture *)\n\
    \  Array.init (hi - lo) (fun i -> (m, Trace.get trace (lo + i)))\n"
  in
  let diags = run_on [ file "lib/detectors/al4.ml" src ] in
  Alcotest.(check (list string)) "suppressed" []
    (rules_of (find_rule "R11" diags))

(* Train-time allocation is legitimate: R11 only guards score paths. *)
let test_r11_train_exempt () =
  let src =
    "let train ~window trace =\n\
    \  ignore window;\n\
    \  List.init 4 (fun i -> (i, Trace.get trace i))\n"
  in
  let diags = run_on [ file "lib/detectors/al5.ml" src ] in
  Alcotest.(check (list string)) "no R11 outside score" []
    (rules_of (find_rule "R11" diags))

(* Flat-automaton stepping is a declared score root: an allocating
   [step] called from the compiled scoring loop is a per-window
   allocation like any other. *)
let r11_flat_loop_ml =
  "let compiled_score_range scorer trace lo hi =\n\
  \  let out = Array.make (hi - lo) 0 in\n\
  \  for i = lo to hi - 1 do\n\
  \    Deadline.checkpoint ();\n\
  \    out.(i - lo) <- Flat_automaton.step scorer trace i\n\
  \  done;\n\
  \  out\n"

let test_r11_flat_step_allocating () =
  let step_ml = "let step auto state symbol = fst (auto, (state, symbol))\n" in
  let diags =
    run_on
      [
        file "lib/stream/flat_automaton.ml" step_ml;
        file "lib/detectors/fastpath.ml" r11_flat_loop_ml;
      ]
  in
  match find_rule "R11" diags with
  | d :: _ ->
      Alcotest.(check string) "file" "lib/stream/flat_automaton.ml"
        d.Diagnostic.file;
      Alcotest.(check string) "name" "allocation" d.Diagnostic.rule_name
  | [] -> Alcotest.fail "expected an R11 diagnostic in step"

let test_r11_flat_step_clean () =
  let step_ml = "let step auto state symbol = auto + state + symbol\n" in
  let diags =
    run_on
      [
        file "lib/stream/flat_automaton.ml" step_ml;
        file "lib/detectors/fastpath.ml" r11_flat_loop_ml;
      ]
  in
  Alcotest.(check (list string)) "allocation-free step clean" []
    (rules_of (find_rule "R11" diags))

(* --- R12: hygiene of the allow markers themselves ----------------------- *)

let test_r12_unknown_token () =
  let src = "(* lint: allow nonsense — typo'd rule *)\nlet a = 1\n" in
  let diags = run_on [ file "lib/m.ml" src; file "lib/m.mli" "val a : int\n" ] in
  match find_rule "R12" diags with
  | [ d ] ->
      Alcotest.(check bool) "is error" true (Diagnostic.is_error d);
      Alcotest.(check bool) "names the token" true
        (contains_sub d.Diagnostic.message "nonsense")
  | ds -> Alcotest.failf "expected one R12 diagnostic, got %d" (List.length ds)

let test_r12_empty_marker () =
  let src = "(* lint: allow *)\nlet a = 1\n" in
  let diags = run_on [ file "lib/m2.ml" src; file "lib/m2.mli" "val a : int\n" ] in
  match find_rule "R12" diags with
  | [ d ] ->
      Alcotest.(check bool) "is error" true (Diagnostic.is_error d);
      Alcotest.(check bool) "says no rules" true
        (contains_sub d.Diagnostic.message "names no rules")
  | ds -> Alcotest.failf "expected one R12 diagnostic, got %d" (List.length ds)

(* A bare allow still suppresses, but draws a warning asking for the
   justification clause. *)
let test_r12_bare_allow_warns () =
  let src = "(* lint: allow partiality *)\nlet a () = failwith \"x\"\n" in
  let diags =
    run_on [ file "lib/m3.ml" src; file "lib/m3.mli" "val a : unit -> 'a\n" ]
  in
  Alcotest.(check (list string)) "only the R12 warning" [ "R12" ]
    (rules_of diags);
  Alcotest.(check bool) "is warning" false
    (Diagnostic.is_error (List.hd diags))

let test_r12_justified_clean () =
  let src =
    "(* lint: allow partiality — documented precondition *)\n\
     let a () = failwith \"x\"\n"
  in
  let diags =
    run_on [ file "lib/m4.ml" src; file "lib/m4.mli" "val a : unit -> 'a\n" ]
  in
  Alcotest.(check (list string)) "no diagnostics" [] (rules_of diags)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "clean tree" `Quick test_clean_tree;
          Alcotest.test_case "R0 syntax" `Quick test_syntax_error;
          Alcotest.test_case "R1 random" `Quick test_r1_random;
          Alcotest.test_case "R1 qualified + clock" `Quick
            test_r1_qualified_and_clock;
          Alcotest.test_case "R1 hashtbl iter" `Quick test_r1_hashtbl_iter;
          Alcotest.test_case "R1 exempt in bin" `Quick test_r1_not_in_bin;
          Alcotest.test_case "R2 print" `Quick test_r2_print;
          Alcotest.test_case "R3 partiality" `Quick test_r3_partiality;
          Alcotest.test_case "whitelist line below" `Quick
            test_whitelist_suppresses;
          Alcotest.test_case "whitelist same line" `Quick
            test_whitelist_same_line;
          Alcotest.test_case "whitelist wrong rule" `Quick
            test_whitelist_wrong_rule;
          Alcotest.test_case "R4 missing mli" `Quick test_r4_missing_mli;
          Alcotest.test_case "R4 exempts tests" `Quick
            test_r4_not_for_test_role;
          Alcotest.test_case "R5 contract" `Quick test_r5_contract;
          Alcotest.test_case "R5 include" `Quick test_r5_include_detector_s;
          Alcotest.test_case "R6 domain in lib" `Quick test_r6_domain_in_lib;
          Alcotest.test_case "R6 exempts pool" `Quick test_r6_exempts_pool;
          Alcotest.test_case "R6 exempt in bin" `Quick test_r6_not_in_bin;
          Alcotest.test_case "R6 whitelist" `Quick test_r6_whitelist;
          Alcotest.test_case "R7 score path" `Quick test_r7_score_path;
          Alcotest.test_case "R7 train exempt" `Quick test_r7_train_exempt;
          Alcotest.test_case "R7 detectors only" `Quick
            test_r7_only_in_detectors;
          Alcotest.test_case "R7 whitelist" `Quick test_r7_whitelist;
          Alcotest.test_case "R7 hashtbl" `Quick test_r7_hashtbl;
          Alcotest.test_case "R7 cursor clean" `Quick test_r7_cursor_clean;
          Alcotest.test_case "R8 try wildcard" `Quick test_r8_try_wildcard;
          Alcotest.test_case "R8 match exception" `Quick
            test_r8_match_exception;
          Alcotest.test_case "R8 named clean" `Quick
            test_r8_named_exception_clean;
          Alcotest.test_case "R8 exempts fault" `Quick test_r8_exempts_fault;
          Alcotest.test_case "R8 whitelist" `Quick test_r8_whitelist;
          Alcotest.test_case "R8 exempt in bin" `Quick test_r8_not_in_bin;
          Alcotest.test_case "R9 missing checkpoint" `Quick
            test_r9_missing_checkpoint;
          Alcotest.test_case "R9 checkpointed clean" `Quick
            test_r9_checkpointed_clean;
          Alcotest.test_case "R9 guarded by caller" `Quick
            test_r9_guarded_by_caller;
          Alcotest.test_case "R9 whitelist" `Quick test_r9_whitelist;
          Alcotest.test_case "R9 cold loop exempt" `Quick
            test_r9_cold_loop_exempt;
          Alcotest.test_case "R9 flat compile uncheckpointed" `Quick
            test_r9_flat_compile_uncheckpointed;
          Alcotest.test_case "R9 flat compile checkpointed" `Quick
            test_r9_flat_compile_checkpointed;
          Alcotest.test_case "R10 unmapped constructor" `Quick
            test_r10_unmapped_constructor;
          Alcotest.test_case "R10 mapped clean" `Quick test_r10_mapped_clean;
          Alcotest.test_case "R10 whitelist" `Quick test_r10_whitelist;
          Alcotest.test_case "R11 alloc per window" `Quick
            test_r11_alloc_per_window;
          Alcotest.test_case "R11 scalar clean" `Quick test_r11_scalar_clean;
          Alcotest.test_case "R11 preallocation clean" `Quick
            test_r11_preallocation_clean;
          Alcotest.test_case "R11 whitelist" `Quick test_r11_whitelist;
          Alcotest.test_case "R11 train exempt" `Quick test_r11_train_exempt;
          Alcotest.test_case "R11 flat step allocating" `Quick
            test_r11_flat_step_allocating;
          Alcotest.test_case "R11 flat step clean" `Quick
            test_r11_flat_step_clean;
          Alcotest.test_case "R12 unknown token" `Quick test_r12_unknown_token;
          Alcotest.test_case "R12 empty marker" `Quick test_r12_empty_marker;
          Alcotest.test_case "R12 bare allow warns" `Quick
            test_r12_bare_allow_warns;
          Alcotest.test_case "R12 justified clean" `Quick
            test_r12_justified_clean;
          Alcotest.test_case "rendering" `Quick test_diagnostic_rendering;
        ] );
    ]
