(* End-to-end reproduction checks: the paper's qualitative claims must
   hold on a reduced-scale suite.  These are the assertions behind
   EXPERIMENTS.md. *)

open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let maps = lazy (Experiment.all_maps (tiny_suite ()) Registry.all)

let map name =
  List.find (fun m -> Performance_map.detector m = name) (Lazy.force maps)

let test_stide_diagonal () =
  let m = map "stide" in
  Performance_map.fold m ~init:() ~f:(fun () ~anomaly_size ~window o ->
      Alcotest.(check bool)
        (Printf.sprintf "stide AS=%d DW=%d" anomaly_size window)
        (window >= anomaly_size) (Outcome.is_capable o);
      if window < anomaly_size then
        Alcotest.(check bool) "exactly blind below diagonal" true
          (Outcome.is_blind o))

let test_markov_everywhere () =
  let m = map "markov" in
  Performance_map.fold m ~init:() ~f:(fun () ~anomaly_size ~window o ->
      Alcotest.(check bool)
        (Printf.sprintf "markov AS=%d DW=%d" anomaly_size window)
        true (Outcome.is_capable o))

let test_nn_mimics_markov () =
  let m = map "nn" in
  Alcotest.(check bool) "nn covers the space" true
    (Coverage.equal (Coverage.of_map m) (Coverage.of_map (map "markov")))

let test_lnb_never_capable () =
  let m = map "lnb" in
  Alcotest.(check int) "no capable cells" 0
    (List.length (Performance_map.capable_cells m));
  (* and exactly zero response below the diagonal, graded above *)
  Performance_map.fold m ~init:() ~f:(fun () ~anomaly_size ~window o ->
      if window < anomaly_size then
        Alcotest.(check bool)
          (Printf.sprintf "lnb blind below diagonal AS=%d DW=%d" anomaly_size
             window)
          true (Outcome.is_blind o)
      else
        Alcotest.(check bool)
          (Printf.sprintf "lnb weak at AS=%d DW=%d" anomaly_size window)
          true (Outcome.is_weak o))

let test_stide_subset_of_markov () =
  let r = Experiment.relation (map "stide") (map "markov") in
  Alcotest.(check bool) "subset" true r.Experiment.left_subset_of_right;
  Alcotest.(check int) "stide adds nothing" 0 r.Experiment.left_only

let test_lnb_adds_nothing_to_stide () =
  (* The paper: combining Stide and L&B affords no detection advantage. *)
  let stide = Coverage.of_map (map "stide") in
  let lnb = Coverage.of_map (map "lnb") in
  Alcotest.(check int) "no gain" 0 (Coverage.gain ~base:stide ~added:lnb)

let test_summaries () =
  let s = Experiment.summary (map "stide") in
  let cells = Performance_map.cell_count (map "stide") in
  Alcotest.(check int) "partition of cells" cells
    (s.Experiment.capable + s.Experiment.weak + s.Experiment.blind);
  Alcotest.(check string) "name" "stide" s.Experiment.detector

let test_pairwise_relations_count () =
  let rels = Experiment.pairwise_relations (Lazy.force maps) in
  Alcotest.(check int) "4 choose 2" 6 (List.length rels)

let test_suppressor_experiment () =
  let suite = tiny_suite () in
  let r =
    Deployment.suppressor_experiment suite ~window:8 ~anomaly_size:5
      ~deploy_len:15_000 ~seed:123
  in
  let find name =
    List.find (fun (d : Deployment.detector_report) -> d.Deployment.name = name)
      r.Deployment.detectors
  in
  let markov = find "markov" and stide = find "stide" in
  Alcotest.(check bool) "markov noisier than stide" true
    (markov.Deployment.false_alarms.False_alarm.alarms
    > stide.Deployment.false_alarms.False_alarm.alarms);
  Alcotest.(check bool) "markov hits" true markov.Deployment.hit;
  Alcotest.(check bool) "stide hits" true stide.Deployment.hit;
  Alcotest.(check bool) "ensemble keeps the hit" true r.Deployment.ensemble_hit;
  let s = r.Deployment.suppression in
  Alcotest.(check int) "partition"
    s.Ensemble.primary_alarms
    (s.Ensemble.corroborated + s.Ensemble.suppressed);
  Alcotest.(check bool) "most markov alarms suppressed" true
    (s.Ensemble.suppressed > s.Ensemble.corroborated)

let test_lnb_threshold_experiment () =
  let suite = tiny_suite () in
  let deploy = Deployment.deployment_stream suite ~len:15_000 ~seed:321 in
  let fa_training =
    Seqdiv_stream.Trace.sub suite.Suite.training ~pos:0 ~len:10_000
  in
  let points =
    Deployment.lnb_threshold_experiment suite ~anomaly_size:5
      ~deploy_trace:deploy ~fa_training
  in
  List.iter
    (fun (p : Deployment.lnb_threshold_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "hit iff DW >= AS (DW=%d)" p.Deployment.window)
        (p.Deployment.window >= 5) p.Deployment.hit;
      check_float "threshold = 2/(DW+1)" ~epsilon:1e-9
        (2.0 /. float_of_int (p.Deployment.window + 1))
        p.Deployment.score_threshold)
    points;
  (* False alarms grow with the window in the undertrained regime. *)
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "fa grows (%.5f -> %.5f)" first.Deployment.false_alarm_rate
       last.Deployment.false_alarm_rate)
    true
    (last.Deployment.false_alarm_rate > first.Deployment.false_alarm_rate)

let test_lfc_ablation () =
  let suite = tiny_suite () in
  let deploy = Deployment.deployment_stream suite ~len:15_000 ~seed:55 in
  let fa_training =
    Seqdiv_stream.Trace.sub suite.Suite.training ~pos:0 ~len:8_000
  in
  let test = Suite.stream suite ~anomaly_size:4 ~window:6 in
  let points =
    Ablation.lfc_experiment ~training:fa_training
      ~injection:test.Suite.injection ~deploy ~window:6
      ~settings:[ (20, 1); (20, 3) ] ()
  in
  List.iter
    (fun (p : Ablation.lfc_point) ->
      Alcotest.(check bool) "raw hit" true p.Ablation.raw_hit)
    points;
  (* A demanding min-count suppresses isolated false alarms. *)
  match points with
  | [ lenient; strict ] ->
      Alcotest.(check bool) "strict LFC reduces FAs" true
        (strict.Ablation.lfc_false_alarms <= lenient.Ablation.lfc_false_alarms)
  | _ -> Alcotest.fail "expected two points"

let test_window_tradeoff () =
  let suite = tiny_suite () in
  let deploy = Deployment.deployment_stream suite ~len:15_000 ~seed:77 in
  let fa_training =
    Seqdiv_stream.Trace.sub suite.Suite.training ~pos:0 ~len:8_000
  in
  let points = Ablation.window_tradeoff suite ~fa_training ~deploy in
  (* Coverage grows exactly with the diagonal law: window w covers the
     anomaly sizes <= w. *)
  List.iter
    (fun (p : Ablation.window_point) ->
      let sizes = Suite.anomaly_sizes suite in
      let expected =
        float_of_int (List.length (List.filter (fun s -> s <= p.Ablation.window) sizes))
        /. float_of_int (List.length sizes)
      in
      check_float
        (Printf.sprintf "coverage at DW=%d" p.Ablation.window)
        ~epsilon:1e-9 expected p.Ablation.coverage)
    points;
  (* False alarms trend upward with the window. *)
  let first = List.hd points
  and last = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "fa grows with window" true
    (last.Ablation.false_alarm_rate > first.Ablation.false_alarm_rate)

let test_seed_robustness () =
  let base =
    { (Suite.scaled_params ~train_len:30_000 ~background_len:1_500) with
      Suite.dw_max = 6;
    }
  in
  let points = Ablation.seed_robustness ~base ~seeds:[ 3; 11 ] () in
  List.iter
    (fun (p : Ablation.seed_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "stide diagonal at seed %d" p.Ablation.seed)
        true p.Ablation.stide_diagonal;
      Alcotest.(check bool)
        (Printf.sprintf "markov everywhere at seed %d" p.Ablation.seed)
        true p.Ablation.markov_everywhere;
      Alcotest.(check bool)
        (Printf.sprintf "lnb nowhere at seed %d" p.Ablation.seed)
        true p.Ablation.lnb_nowhere)
    points

let test_deviation_sweep () =
  let base =
    { (Suite.scaled_params ~train_len:30_000 ~background_len:1_500) with
      Suite.dw_max = 6;
    }
  in
  let points =
    Ablation.deviation_sweep ~base ~deviations:[ 0.00002; 0.0025; 0.2 ] ()
  in
  (match points with
  | [ too_low; paper; too_high ] ->
      Alcotest.(check bool) "too-low deviation fails" false
        too_low.Ablation.suite_builds;
      Alcotest.(check bool) "paper deviation builds" true
        paper.Ablation.suite_builds;
      Alcotest.(check bool) "paper deviation keeps the diagonal" true
        paper.Ablation.stide_diagonal_held;
      Alcotest.(check bool) "too-high deviation fails" false
        too_high.Ablation.suite_builds;
      Alcotest.(check bool) "constructible sizes shrink at extremes" true
        (too_low.Ablation.sizes_constructible
         < paper.Ablation.sizes_constructible)
  | _ -> Alcotest.fail "expected three points")

let test_rare_threshold_ablation () =
  let suite = tiny_suite () in
  let points =
    Ablation.rare_threshold_sweep suite ~thresholds:[ 0.00001; 0.005; 0.2 ]
  in
  (match points with
  | [ too_low; paper; too_high ] ->
      (* Below the deviation frequency nothing is rare; at the paper's
         threshold the deviant 2-grams are; far above it even the cycle
         2-grams become "rare". *)
      Alcotest.(check int) "nothing rare at 0.001%" 0
        too_low.Ablation.rare_twograms;
      Alcotest.(check bool) "deviants rare at 0.5%" true
        (paper.Ablation.rare_twograms > 0);
      Alcotest.(check bool) "cycle engulfed at 20%" true
        (too_high.Ablation.rare_twograms > paper.Ablation.rare_twograms)
  | _ -> Alcotest.fail "expected three points");
  List.iter
    (fun (p : Ablation.rare_point) ->
      Alcotest.(check int) "2-gram partition"
        (p.Ablation.rare_twograms + p.Ablation.common_twograms)
        (Seqdiv_stream.Seq_db.cardinal
           (Seqdiv_stream.Ngram_index.db suite.Suite.index 2)))
    points

let () =
  Alcotest.run "integration"
    [
      ( "maps",
        [
          Alcotest.test_case "stide diagonal (fig 5)" `Slow test_stide_diagonal;
          Alcotest.test_case "markov everywhere (fig 4)" `Slow test_markov_everywhere;
          Alcotest.test_case "nn mimics markov (fig 6)" `Slow test_nn_mimics_markov;
          Alcotest.test_case "lnb never capable (fig 3)" `Slow test_lnb_never_capable;
          Alcotest.test_case "stide subset of markov" `Slow test_stide_subset_of_markov;
          Alcotest.test_case "lnb adds nothing" `Slow test_lnb_adds_nothing_to_stide;
          Alcotest.test_case "summaries partition" `Slow test_summaries;
          Alcotest.test_case "pairwise relations" `Slow test_pairwise_relations_count;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "suppressor (T2)" `Slow test_suppressor_experiment;
          Alcotest.test_case "lnb threshold (T3)" `Slow test_lnb_threshold_experiment;
          Alcotest.test_case "lfc ablation (A1)" `Slow test_lfc_ablation;
          Alcotest.test_case "window tradeoff (A6)" `Slow test_window_tradeoff;
          Alcotest.test_case "seed robustness (E3)" `Slow test_seed_robustness;
          Alcotest.test_case "rare threshold (A4)" `Slow test_rare_threshold_ablation;
          Alcotest.test_case "deviation envelope (A7)" `Slow test_deviation_sweep;
        ] );
    ]
