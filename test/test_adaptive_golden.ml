(* Golden-file regression tests for adaptive thresholding: the
   controller's trajectory on a seeded drifting corpus and the serve
   health rendering over adaptive session tables, compared
   byte-for-byte against fixtures under [test/golden/].

   Both scenarios are fully deterministic (fixed suite seed, seeded
   drift, fixed batch literals), so any byte of drift is a real
   behaviour change: a moved refresh, a re-priced threshold, a changed
   sketch evolution, or a reworded health line.  The trajectory
   fixture ends with the controller's full serialized state — the
   exact token a shard journal would carry — so the sketch's internal
   evolution is pinned, not just its outputs.

   To update the fixtures after an intentional change, run
   [scripts/promote-golden.sh] and review the diff like any other
   code. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_util
open Seqdiv_test_support

let golden_dir =
  match Sys.getenv_opt "SEQDIV_GOLDEN_DIR" with
  | Some d -> d
  | None -> "golden"

let gen_trajectory () =
  (* One controller rides a drifting corpus end to end; after each
     session the counters and the lossless threshold are recorded.
     The drift ramps rare-transition frequency up threefold, so the
     trajectory must show the threshold climbing while the alarm
     counter stays near the budget. *)
  let suite = tiny_suite () in
  let markov =
    Trained.train (Registry.find_exn "markov") ~window:4 suite.Suite.training
  in
  let corpus =
    Session_workload.drifting suite
      (Prng.create ~seed:(suite.Suite.params.Suite.seed + 41))
      ~sessions:6 ~length:600 ~segments:3 ~peak_deviation:0.2
  in
  let ctl =
    Adaptive_threshold.create
      (Adaptive_threshold.config ~budget:0.05 ~warmup:64 ~refresh:16
         ~initial:1.0 ())
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "== adaptive trajectory (markov w4, budget 0.05, drifting) ==\n";
  List.iteri
    (fun i trace ->
      Array.iter
        (fun item -> ignore (Adaptive_threshold.step ctl item.Response.score))
        (Trained.score markov trace).Response.items;
      Buffer.add_string buf
        (Printf.sprintf
           "session=%d windows=%d alarms=%d adjustments=%d threshold=%h\n" i
           (Adaptive_threshold.windows ctl)
           (Adaptive_threshold.alarms ctl)
           (Adaptive_threshold.adjustments ctl)
           (Adaptive_threshold.threshold ctl)))
    (Sessions.traces corpus);
  Buffer.add_string buf
    (Printf.sprintf "state %s\n" (Adaptive_threshold.to_string ctl));
  Buffer.contents buf

let gen_health () =
  (* Two adaptive session tables fed fixed batch literals (clean
     cycles, one foreign burst, one cross-boundary session end), then
     rendered exactly the way `seqdiv serve` answers a health probe —
     windows, alarms and the lossless published threshold per shard. *)
  let suite = tiny_suite () in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
  in
  let scorer =
    match Trained.compile stide with
    | Some scorer -> scorer
    | None -> failwith "stide must compile"
  in
  let threshold = Trained.alarm_threshold stide in
  let adaptive =
    Adaptive_threshold.config ~budget:0.2 ~warmup:4 ~refresh:2 ~initial:0.5 ()
  in
  let shards = 2 in
  let tables =
    Array.init shards (fun shard ->
        Session_table.create ~scorer ~threshold ~adaptive ~shard ())
  in
  let batches =
    [
      [
        Frame.Data { session = 0; symbols = [| 0; 1; 2; 3; 0; 1; 2; 3 |] };
        Frame.Data { session = 1; symbols = [| 0; 1; 2; 3; 0; 0; 0; 0 |] };
        Frame.Data { session = 2; symbols = [| 5; 5; 5; 5; 5; 5 |] };
      ];
      [
        Frame.Data { session = 0; symbols = [| 0; 0; 0; 0; 0; 1; 2; 3 |] };
        Frame.Data
          { session = 3; symbols = [| 0; 1; 2; 3; 4; 5; 6; 7; 0; 1; 2; 3 |] };
        Frame.End_of_session { session = 1 };
      ];
    ]
  in
  List.iteri
    (fun batch_id events ->
      let buckets = Array.make shards [] in
      List.iter
        (fun event ->
          let session =
            match event with
            | Frame.Data { session; _ } | Frame.End_of_session { session } ->
                session
          in
          let shard = Frame.shard_of_session ~shards session in
          buckets.(shard) <- event :: buckets.(shard))
        events;
      Array.iteri
        (fun shard bucket ->
          match List.rev bucket with
          | [] -> ()
          | sub -> ignore (Session_table.apply tables.(shard) ~batch_id sub))
        buckets)
    batches;
  let health =
    {
      Frame.shards_health =
        Array.to_list
          (Array.map
             (fun table ->
               {
                 Frame.h_shard = Session_table.shard table;
                 h_alive = true;
                 h_degraded = false;
                 h_restarts = 0;
                 h_queue_depth = 0;
                 h_retry_after_ms = 0;
                 h_windows = Session_table.windows_scored table;
                 h_alarms = Session_table.alarm_windows table;
                 h_threshold = Session_table.current_threshold table;
               })
             tables);
      connections = 1;
      evictions = 0;
      draining = false;
    }
  in
  "== serve health under adaptive thresholding ==\n"
  ^ Frame.render_health health

let scenarios =
  [ ("adaptive_trajectory", gen_trajectory); ("adaptive_health", gen_health) ]

let fixture name = Filename.concat golden_dir (name ^ ".txt")

let promote () =
  List.iter
    (fun (name, gen) ->
      let path = fixture name in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (gen ()));
      Printf.printf "promoted %s\n" path)
    scenarios

let check_golden name gen () =
  let path = fixture name in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing fixture %s — run scripts/promote-golden.sh" path;
  let expected = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string)
    (Printf.sprintf "%s matches %s byte-for-byte" name path)
    expected (gen ())

let () =
  match Sys.getenv_opt "SEQDIV_GOLDEN_PROMOTE" with
  | Some _ -> promote ()
  | None ->
      Alcotest.run "adaptive_golden"
        [
          ( "fixtures",
            List.map
              (fun (name, gen) ->
                Alcotest.test_case name `Slow (check_golden name gen))
              scenarios );
        ]
