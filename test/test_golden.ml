(* Golden-file regression tests: the rendered outputs — ascii maps,
   CSV export, and the T1 coverage table — of three small grids
   (healthy, fatal chaos, deadline timeout) compared byte-for-byte
   against fixtures under [test/golden/].  Every scenario is fully
   deterministic (fixed suite seed, stateless fault plan, virtual-clock
   deadline), so any byte of drift is a real behaviour change.

   To update the fixtures after an intentional change, run
   [scripts/promote-golden.sh] and review the diff like any other code. *)

open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_report
open Seqdiv_util
open Seqdiv_test_support

let golden_dir =
  (* The promote script points this at the source tree; under
     [dune runtest] the fixtures are staged next to the executable. *)
  match Sys.getenv_opt "SEQDIV_GOLDEN_DIR" with
  | Some d -> d
  | None -> "golden"

let grid ?(compile = false) ?fault_plan ?deadline names =
  let e = Engine.create ~jobs:1 ~compile ?fault_plan ?deadline () in
  Experiment.all_maps ~engine:e (tiny_suite ())
    (List.map Registry.find_exn names)

let render maps =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== ascii ==\n";
  List.iter
    (fun m ->
      Buffer.add_string buf (Ascii_map.render m);
      Buffer.add_char buf '\n')
    maps;
  Buffer.add_string buf "== csv ==\n";
  Buffer.add_string buf
    (Csv.of_rows
       ~header:[ "detector"; "anomaly_size"; "window"; "outcome"; "max_response" ]
       (List.concat_map Csv.map_rows maps));
  Buffer.add_string buf "== t1 ==\n";
  Buffer.add_string buf (Paper.table1 maps);
  Buffer.contents buf

let gen_healthy ~compile () = render (grid ~compile [ "stide"; "markov" ])

let gen_chaos ~compile () =
  (* A fatal fault plan: failures fire from the stateless per-key hash,
     so the same cells fail with the same rendered faults every run. *)
  let plan = Fault_plan.of_seed ~transient_rate:0.0 ~fatal_rate:0.1 ~seed:7 () in
  render (grid ~compile ~fault_plan:plan [ "stide"; "markov" ])

let gen_timeout ~compile () =
  (* Virtual clock at 1 ms per read, 12 ms budget.  Legitimate tasks of
     the tiny suite read the clock under ten times (trie scan
     30k/4096 ≈ 8, score loops ≤ 2), so they all finish; the neural
     detector checkpoints every training epoch and dies at epoch ~11 of
     400 — every nn cell degrades to Failed/timeout, deterministically,
     with no wall-clock sleeping. *)
  let clock = Fake_clock.create ~step_ms:1.0 in
  let deadline = Deadline.spec ~clock:(Fake_clock.clock clock) ~budget_ms:12 in
  render (grid ~compile ~deadline [ "stide"; "nn" ])

let scenarios =
  [ ("healthy", gen_healthy); ("chaos", gen_chaos); ("timeout", gen_timeout) ]

let fixture name = Filename.concat golden_dir (name ^ ".txt")

let promote () =
  List.iter
    (fun (name, gen) ->
      let path = fixture name in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (gen ~compile:false ()));
      Printf.printf "promoted %s\n" path)
    scenarios

let check_golden name gen () =
  let path = fixture name in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing fixture %s — run scripts/promote-golden.sh" path;
  let expected = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string)
    (Printf.sprintf "%s grid matches %s byte-for-byte" name path)
    expected (gen ())

let () =
  match Sys.getenv_opt "SEQDIV_GOLDEN_PROMOTE" with
  | Some _ -> promote ()
  | None ->
      Alcotest.run "golden"
        [
          ( "grids",
            List.map
              (fun (name, gen) ->
                Alcotest.test_case name `Slow
                  (check_golden name (gen ~compile:false)))
              scenarios );
          (* The compiled fast path must leave every fixture untouched —
             same bytes under health, chaos and timeout.  Fixtures are
             only ever promoted from the reference (uncompiled) path. *)
          ( "grids-compiled",
            List.map
              (fun (name, gen) ->
                Alcotest.test_case name `Slow
                  (check_golden name (gen ~compile:true)))
              scenarios );
        ]
