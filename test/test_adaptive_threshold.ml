(* The adaptive-threshold controller and its ensemble policy.

   Three layers under test, each with a crisp statistical contract:

   - the controller: alarms strictly above its threshold, honours
     warmup, moves only when the implied alarm rate strays from the
     budget by more than the hysteresis band, and roundtrips through
     its journal token bit-exactly (resume must be invisible);
   - the budget allocator: emitter rates sum to the system rate
     (union bound), suppressors ride uncharged;
   - the ensemble policy: on the full 112-stream suite, the
     Stide-suppresses-Markov conjunction strictly reduces false
     alarms while every injected anomaly stays detected. *)

open Seqdiv_util
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

(* --- controller: exact behaviour on atom streams ------------------------

   Atom mixtures make every quantity exact: a stream that is 3.0
   except for a 10.0 every 25th position has tail mass 0.04 above the
   3.0 atom — clearly inside a 0.05 budget's hysteresis band, so the
   0.95-quantile sits at 3.0 unambiguously and the strict [>] alarm
   rule prices the tail at exactly the 10.0 mass.  (Mass {e equal} to
   the budget would put the quantile on a knife's edge between the
   atoms.)  The sketch epsilon is pinned well under the band so rank
   slack cannot cross it. *)

let cfg_atoms =
  Adaptive_threshold.config ~budget:0.05 ~epsilon:0.005 ~warmup:128
    ~refresh:32 ~initial:0.5 ()

let atom_score ~period i = if i mod period = 0 then 10.0 else 3.0

let run_atoms t ~period ~from ~upto =
  for i = from to upto - 1 do
    ignore (Adaptive_threshold.step t (atom_score ~period i))
  done

let test_warmup_honored () =
  let t = Adaptive_threshold.create cfg_atoms in
  run_atoms t ~period:25 ~from:0 ~upto:127;
  check_float "threshold untouched before warmup" ~epsilon:0.0 0.5
    (Adaptive_threshold.threshold t);
  Alcotest.(check int) "no adjustments before warmup" 0
    (Adaptive_threshold.adjustments t)

let test_tracks_atom_quantile () =
  let t = Adaptive_threshold.create cfg_atoms in
  run_atoms t ~period:25 ~from:0 ~upto:4_000;
  (* Tail mass above 3.0 is 0.04, inside the budget's band: the first
     refresh moves to the atom and every later refresh re-prices to
     the same value (bitwise), which does not count as a move. *)
  check_float "threshold at the budget atom" ~epsilon:0.0 3.0
    (Adaptive_threshold.threshold t);
  Alcotest.(check int) "exactly one move" 1
    (Adaptive_threshold.adjustments t);
  (* Post-warmup, only the 10.0 windows are strictly above 3.0. *)
  let windows = Adaptive_threshold.windows t in
  let alarms = Adaptive_threshold.alarms t in
  Alcotest.(check int) "windows counted" 4_000 windows;
  (* Every window alarmed until the first refresh (all scores beat the
     0.5 initial), exactly the 5% atom afterwards. *)
  Alcotest.(check bool)
    (Printf.sprintf "rate settles on the budget (alarms=%d)" alarms)
    true
    (let settled =
       float_of_int (alarms - 128) /. float_of_int (windows - 128)
     in
     settled > 0.03 && settled < 0.07)

let test_hysteresis_band () =
  let t = Adaptive_threshold.create cfg_atoms in
  (* Phase 1: tail mass near budget — one move to 3.0. *)
  run_atoms t ~period:25 ~from:0 ~upto:2_048;
  Alcotest.(check int) "phase 1: one move" 1 (Adaptive_threshold.adjustments t);
  (* Phase 2: the heavy atom's share rises to 20%.  The cumulative
     tail at 3.0 drifts out of the [budget ± 0.25·budget] band, the
     controller re-prices, and the threshold lands on the 10.0 atom —
     after which the strict rule alarms on nothing. *)
  run_atoms t ~period:5 ~from:2_048 ~upto:8_192;
  check_float "phase 2: threshold climbs to the heavy atom" ~epsilon:0.0 10.0
    (Adaptive_threshold.threshold t);
  Alcotest.(check int) "phase 2: exactly one more move" 2
    (Adaptive_threshold.adjustments t)

let test_strictly_above () =
  let t = Adaptive_threshold.create cfg_atoms in
  Alcotest.(check bool) "at the threshold: silent" false
    (Adaptive_threshold.step t 0.5);
  Alcotest.(check bool) "strictly above: alarms" true
    (Adaptive_threshold.step t 0.500001);
  Alcotest.(check bool) "below: silent" false (Adaptive_threshold.step t 0.49);
  Alcotest.(check int) "alarm counter agrees" 1 (Adaptive_threshold.alarms t);
  Alcotest.(check int) "window counter agrees" 3
    (Adaptive_threshold.windows t)

let test_config_rejects () =
  let bad f =
    match f () with
    | (_ : Adaptive_threshold.config) -> Alcotest.fail "invalid config accepted"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Adaptive_threshold.config ~budget:0.0 ~initial:0.5 ());
  bad (fun () -> Adaptive_threshold.config ~budget:1.0 ~initial:0.5 ());
  bad (fun () ->
      Adaptive_threshold.config ~budget:0.1 ~epsilon:0.5 ~initial:0.5 ());
  bad (fun () ->
      Adaptive_threshold.config ~budget:0.1 ~warmup:0 ~initial:0.5 ());
  bad (fun () ->
      Adaptive_threshold.config ~budget:0.1 ~refresh:0 ~initial:0.5 ());
  bad (fun () ->
      Adaptive_threshold.config ~budget:0.1 ~hysteresis:(-1.0) ~initial:0.5 ());
  bad (fun () -> Adaptive_threshold.config ~budget:0.1 ~initial:Float.nan ())

(* --- controller: serialization is resume-invisible ---------------------- *)

let resume_cfg =
  Adaptive_threshold.config ~budget:0.1 ~warmup:8 ~refresh:4 ~initial:0.25 ()

let scores_arb =
  QCheck.(
    list_of_size Gen.(0 -- 300)
      (map (fun i -> float_of_int (i - 500) /. 131.0) (int_bound 1000)))

let prop_roundtrip_and_resume (pre, post) =
  let live = Adaptive_threshold.create resume_cfg in
  List.iter (fun s -> ignore (Adaptive_threshold.step live s)) pre;
  match
    Adaptive_threshold.of_string resume_cfg (Adaptive_threshold.to_string live)
  with
  | None -> false
  | Some resumed ->
      Adaptive_threshold.equal live resumed
      && List.for_all
           (fun s ->
             (* Every post-restore decision must agree, not just the
                final state: a resumed shard replays into the same
                incident log. *)
             Adaptive_threshold.step live s = Adaptive_threshold.step resumed s)
           post
      && Adaptive_threshold.equal live resumed

let test_of_string_rejects () =
  let t = Adaptive_threshold.create resume_cfg in
  for i = 0 to 99 do
    ignore (Adaptive_threshold.step t (float_of_int (i mod 7)))
  done;
  let tok = Adaptive_threshold.to_string t in
  let other_cfg =
    Adaptive_threshold.config ~budget:0.2 ~warmup:8 ~refresh:4 ~initial:0.25 ()
  in
  List.iter
    (fun (what, cfg, s) ->
      match Adaptive_threshold.of_string cfg s with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted %s" what)
    [
      ("empty", resume_cfg, "");
      ("garbage", resume_cfg, "nonsense");
      ("truncated", resume_cfg, String.sub tok 0 (String.length tok / 2));
      (* The sketch's epsilon is pinned to the config: a controller
         token never restores under a different budget. *)
      ("foreign config", other_cfg, tok);
      ("alarms exceed windows", resume_cfg, "at1:3:4:0:3fd0000000000000:gk1");
    ]

(* --- budget allocator --------------------------------------------------- *)

let weights_arb = QCheck.(list_of_size Gen.(1 -- 6) (1 -- 9))

let prop_emitter_rates_sum weights =
  let members =
    List.mapi
      (fun i w ->
        {
          Adaptive_threshold.m_name = Printf.sprintf "e%d" i;
          m_role = Adaptive_threshold.Emitter;
          m_weight = float_of_int w;
        })
      weights
  in
  let suppressor =
    {
      Adaptive_threshold.m_name = "veto";
      m_role = Adaptive_threshold.Suppressor "e0";
      m_weight = 1.0;
    }
  in
  let system_rate = 0.04 in
  let allocs =
    Adaptive_threshold.allocate ~system_rate (members @ [ suppressor ])
  in
  let is_emitter a =
    match a.Adaptive_threshold.a_member.Adaptive_threshold.m_role with
    | Adaptive_threshold.Emitter -> true
    | Adaptive_threshold.Suppressor _ -> false
  in
  let emitter_sum =
    List.fold_left
      (fun acc a ->
        if is_emitter a then acc +. a.Adaptive_threshold.a_rate else acc)
      0.0 allocs
  in
  (* Union bound: the emitters spend the whole system budget between
     them; the suppressor's rate is not charged against it. *)
  Float.abs (emitter_sum -. system_rate) < 1e-12

let test_suppressor_rate () =
  let members = Adaptive_threshold.default_members in
  let allocs = Adaptive_threshold.allocate ~system_rate:0.01 members in
  (match allocs with
  | [ m; s ] ->
      check_float "markov takes the whole budget" ~epsilon:1e-15 0.01
        m.Adaptive_threshold.a_rate;
      check_float "stide relaxed 16x" ~epsilon:1e-15 0.16
        s.Adaptive_threshold.a_rate
  | _ -> Alcotest.fail "expected two allocations");
  (* The relaxation is capped: a generous system rate cannot push the
     suppressor's rate into alarm-on-everything territory. *)
  match Adaptive_threshold.allocate ~system_rate:0.2 members with
  | [ _; s ] ->
      check_float "cap at 0.25" ~epsilon:1e-15 0.25 s.Adaptive_threshold.a_rate
  | _ -> Alcotest.fail "expected two allocations"

let test_allocate_rejects () =
  let emitter name =
    {
      Adaptive_threshold.m_name = name;
      m_role = Adaptive_threshold.Emitter;
      m_weight = 1.0;
    }
  in
  let bad what f =
    match f () with
    | (_ : Adaptive_threshold.allocation list) ->
        Alcotest.failf "accepted %s" what
    | exception Invalid_argument _ -> ()
  in
  bad "empty member list" (fun () ->
      Adaptive_threshold.allocate ~system_rate:0.1 []);
  bad "rate of 0" (fun () ->
      Adaptive_threshold.allocate ~system_rate:0.0 [ emitter "a" ]);
  bad "duplicate names" (fun () ->
      Adaptive_threshold.allocate ~system_rate:0.1 [ emitter "a"; emitter "a" ]);
  bad "non-positive weight" (fun () ->
      Adaptive_threshold.allocate ~system_rate:0.1
        [ { (emitter "a") with Adaptive_threshold.m_weight = 0.0 } ]);
  bad "suppressor-only ensemble" (fun () ->
      Adaptive_threshold.allocate ~system_rate:0.1
        [
          {
            Adaptive_threshold.m_name = "s";
            m_role = Adaptive_threshold.Suppressor "ghost";
            m_weight = 1.0;
          };
        ]);
  bad "suppressor naming a missing emitter" (fun () ->
      Adaptive_threshold.allocate ~system_rate:0.1
        [
          emitter "a";
          {
            Adaptive_threshold.m_name = "s";
            m_role = Adaptive_threshold.Suppressor "b";
            m_weight = 1.0;
          };
        ])

(* --- budget tracking on seeded drifting streams, jobs 1 and 4 -----------

   The serve-layer claim, reproduced in miniature: per-session
   controllers over a drifting corpus hold the observed alarm rate
   near the budget, and the evaluation is byte-identical whether the
   sessions are scored serially or on four domains (controllers are
   per-session state, so parallelism must be invisible). *)

let drifting_eval ~jobs ~budget =
  let suite = small_suite () in
  let markov =
    Trained.train (Registry.find_exn "markov") ~window:6 suite.Suite.training
  in
  let corpus =
    Session_workload.drifting suite
      (Prng.create ~seed:(suite.Suite.params.Suite.seed + 17))
      ~sessions:16 ~length:3_000 ~segments:3 ~peak_deviation:0.2
  in
  let pool = Pool.create ~jobs () in
  Pool.map pool
    (fun trace ->
      let t =
        Adaptive_threshold.create
          (Adaptive_threshold.config ~budget ~initial:1.0 ())
      in
      let resp = Trained.score markov trace in
      Array.iter
        (fun item -> ignore (Adaptive_threshold.step t item.Response.score))
        resp.Response.items;
      ( Adaptive_threshold.windows t,
        Adaptive_threshold.alarms t,
        Adaptive_threshold.to_string t ))
    (Seqdiv_stream.Sessions.traces corpus)

let test_drifting_budget_and_jobs () =
  let budget = 0.05 in
  let serial = drifting_eval ~jobs:1 ~budget in
  let parallel = drifting_eval ~jobs:4 ~budget in
  Alcotest.(check bool) "jobs 1 and 4 bit-identical" true (serial = parallel);
  let windows, alarms =
    List.fold_left (fun (w, a) (w', a', _) -> (w + w', a + a')) (0, 0) serial
  in
  let rate = float_of_int alarms /. float_of_int windows in
  (* The guarantee is one-sided — P(score > q_phi) <= budget + eps —
     so the ceiling carries the sketch slack; the floor only rules out
     a controller that silences everything. *)
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f within budget %.2f tolerance" rate budget)
    true
    (rate > 0.0 && rate <= (budget *. 1.5) +. 0.01)

(* --- suppression policy on the 112-stream suite -------------------------

   Cold-start operation (no calibration pass: thresholds start at 0
   and are learned in-stream) is exactly where the suppressor earns
   its keep: until the Markov controller's first refresh every benign
   window scores above 0, while Stide — whose training covers the
   clean background completely — scores 0 and the strict [>] rule
   never corroborates.  The conjunction must strictly reduce false
   alarms over the whole suite without losing any detection inside
   Stide's coverage.

   That coverage has a sharp boundary the suite exposes: a {e minimal}
   foreign sequence's proper subsequences are all non-foreign, so a
   detector window shorter than the anomaly only ever sees content
   Stide has trained on — the 28 cells with [DW < AS] are invisible to
   the suppressor and the conjunction is expected to go silent there
   (the diversity trade-off of Section 7).  The test pins the boundary
   exactly: detection preserved iff [DW >= AS]. *)

let test_suppression_on_suite () =
  let suite = small_suite () in
  let system_rate = 0.05 in
  let markov_solo = [ List.hd Adaptive_threshold.default_members ] in
  let solo_fa = ref 0 and ens_fa = ref 0 in
  let solo_hits = ref 0 and covered = ref 0 and covered_hits = ref 0 in
  let streams = ref 0 in
  List.iter
    (fun window ->
      let markov =
        Trained.train (Registry.find_exn "markov") ~window suite.Suite.training
      in
      let stide =
        Trained.train (Registry.find_exn "stide") ~window suite.Suite.training
      in
      List.iter
        (fun anomaly_size ->
          incr streams;
          let ts = Suite.stream suite ~anomaly_size ~window in
          let inj = ts.Suite.injection in
          let mr = Trained.score markov inj.Injector.trace in
          let sr = Trained.score stide inj.Injector.trace in
          let lo, hi =
            Injector.incident_span ~position:inj.Injector.position
              ~size:anomaly_size ~width:window
          in
          let tally resp =
            let fa = ref 0 and hit = ref false in
            Array.iter
              (fun item ->
                if item.Response.score > 0.5 then
                  if item.Response.start >= lo && item.Response.start <= hi
                  then hit := true
                  else incr fa)
              resp.Response.items;
            (!fa, !hit)
          in
          let solo, _ =
            Ensemble.adaptive_combine ~system_rate ~initial:0.0
              (List.map (fun m -> (m, mr)) markov_solo)
          in
          let ens, _ =
            Ensemble.adaptive_combine ~system_rate ~initial:0.0
              (List.combine Adaptive_threshold.default_members [ mr; sr ])
          in
          let s_fa, s_hit = tally solo in
          let e_fa, e_hit = tally ens in
          solo_fa := !solo_fa + s_fa;
          ens_fa := !ens_fa + e_fa;
          if s_hit then incr solo_hits;
          if window >= anomaly_size then begin
            incr covered;
            if e_hit then incr covered_hits
          end
          else if e_hit then
            Alcotest.failf
              "AS=%d DW=%d: detection outside the suppressor's coverage"
              anomaly_size window;
          if e_fa > s_fa then
            Alcotest.failf
              "AS=%d DW=%d: suppression raised false alarms (%d > %d)"
              anomaly_size window e_fa s_fa)
        (Suite.anomaly_sizes suite))
    (Suite.windows suite);
  Alcotest.(check int) "whole suite covered" 112 !streams;
  Alcotest.(check int) "markov alone detects every stream" !streams !solo_hits;
  Alcotest.(check int) "84 cells inside the coverage boundary" 84 !covered;
  Alcotest.(check int) "no covered detection lost to suppression" !covered
    !covered_hits;
  Alcotest.(check bool)
    (Printf.sprintf "false alarms strictly reduced (%d -> %d)" !solo_fa !ens_fa)
    true
    (!ens_fa < !solo_fa)

let () =
  Alcotest.run "adaptive_threshold"
    [
      ( "controller",
        [
          Alcotest.test_case "warmup honored" `Quick test_warmup_honored;
          Alcotest.test_case "tracks the budget atom" `Quick
            test_tracks_atom_quantile;
          Alcotest.test_case "hysteresis band in probability space" `Quick
            test_hysteresis_band;
          Alcotest.test_case "alarms strictly above" `Quick test_strictly_above;
          Alcotest.test_case "config validation" `Quick test_config_rejects;
        ] );
      ( "serialization",
        [
          qcheck ~count:200 "roundtrip and resume agreement"
            QCheck.(pair scores_arb scores_arb)
            prop_roundtrip_and_resume;
          Alcotest.test_case "malformed and foreign tokens rejected" `Quick
            test_of_string_rejects;
        ] );
      ( "allocator",
        [
          qcheck ~count:200 "emitter rates sum to the system rate" weights_arb
            prop_emitter_rates_sum;
          Alcotest.test_case "suppressor relaxed and capped" `Quick
            test_suppressor_rate;
          Alcotest.test_case "validation" `Quick test_allocate_rejects;
        ] );
      ( "budget",
        [
          Alcotest.test_case "drifting streams, jobs 1 and 4" `Quick
            test_drifting_budget_and_jobs;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "suppression on the 112-stream suite" `Quick
            test_suppression_on_suite;
        ] );
    ]
