(* A deterministic virtual clock for deadline tests.  [clock t] is a
   per-domain counter: every read advances that domain's time by
   [step_s].  The counter lives in domain-local storage, so a task's
   observed elapsed time is a function of *its own* clock reads only —
   pool workers execute one task at a time, each task arms its deadline
   and checkpoints on the same domain, and concurrent tasks on other
   domains never advance each other's clocks.  That is what makes a
   deadline fire after the same number of checkpoints in every run, at
   every jobs count: virtual time is "work performed by this task", not
   wall time. *)

type t = { step_s : float; domain_now : float Domain.DLS.key }

let create ~step_ms =
  if step_ms < 0.0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Fake_clock.create: step_ms must be non-negative";
  {
    step_s = step_ms /. 1000.0;
    domain_now =
      (* lint: allow concurrency — per-domain virtual time *)
      Domain.DLS.new_key (fun () -> 0.0);
  }

let clock t () =
  (* lint: allow concurrency — per-domain virtual time *)
  let now = Domain.DLS.get t.domain_now in
  (* lint: allow concurrency — per-domain virtual time *)
  Domain.DLS.set t.domain_now (now +. t.step_s);
  now

let advance t ~ms =
  (* lint: allow concurrency — per-domain virtual time *)
  let now = Domain.DLS.get t.domain_now in
  (* lint: allow concurrency — per-domain virtual time *)
  Domain.DLS.set t.domain_now (now +. (ms /. 1000.0))

let now_ms t =
  (* lint: allow concurrency — per-domain virtual time *)
  Domain.DLS.get t.domain_now *. 1000.0
