open Seqdiv_stream
open Seqdiv_synth

(* The virtual clock for deadline tests lives in its own compilation
   unit; re-export it through the library interface. *)
module Fake_clock = Fake_clock

let alphabet8 = Alphabet.make 8

let trace8 l = Trace.of_list alphabet8 l

let small_params =
  Suite.scaled_params ~train_len:40_000 ~background_len:2_000

let tiny_params =
  {
    (Suite.scaled_params ~train_len:30_000 ~background_len:1_500) with
    Suite.dw_max = 8;
  }

let cache = Hashtbl.create 4

let cached key build =
  match Hashtbl.find_opt cache key with
  | Some suite -> suite
  | None ->
      let suite = build () in
      Hashtbl.add cache key suite;
      suite

let small_suite () = cached "small" (fun () -> Suite.build small_params)
let tiny_suite () = cached "tiny" (fun () -> Suite.build tiny_params)

let training_chain () =
  Markov_chain.paper_chain alphabet8 ~deviation:Generator.default_deviation

let qcheck ?(count = 200) name arbitrary prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arbitrary prop)

let check_float name ~epsilon expected actual =
  Alcotest.(check (float epsilon)) name expected actual
