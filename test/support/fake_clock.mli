(** A deterministic virtual clock for exercising
    {!Seqdiv_util.Deadline} without wall-clock sleeps.

    Each read of {!clock} advances the calling {e domain's} time by
    [step_ms].  Because the time lives in domain-local storage and pool
    workers run one task at a time, a task's observed elapsed time
    counts only its own clock reads (one per deadline arm, one per
    checkpoint) — so a deadline fires after exactly
    [budget_ms / step_ms] checkpoints in every run, at every jobs
    count, which is what makes timeout grids byte-identical and
    golden-testable. *)

type t

val create : step_ms:float -> t
(** A clock that auto-advances by [step_ms] per read.  [step_ms = 0.]
    never advances — a deadline against it never fires.
    @raise Invalid_argument if [step_ms < 0.]. *)

val clock : t -> unit -> float
(** The injectable clock function (seconds, like [Unix.gettimeofday]).
    Reading it advances the calling domain's time by [step_ms]. *)

val advance : t -> ms:float -> unit
(** Manually advance the calling domain's time (unit tests). *)

val now_ms : t -> float
(** The calling domain's current time, in milliseconds (does not
    advance). *)
