(** Shared helpers for the test suites: canonical small fixtures and
    alcotest/qcheck glue. *)

open Seqdiv_stream
open Seqdiv_synth

module Fake_clock = Fake_clock
(** The deterministic virtual clock for deadline tests. *)

val alphabet8 : Alphabet.t
(** The paper's 8-symbol alphabet. *)

val trace8 : int list -> Trace.t
(** Build a trace over {!alphabet8}. *)

val small_params : Suite.params
(** Fast suite parameters for tests: 40k training elements, 2k
    backgrounds, full AS/DW ranges. *)

val small_suite : unit -> Suite.t
(** Build (and cache within the process) the small suite. *)

val tiny_params : Suite.params
(** Even faster: 30k training, reduced window range (DW 2..8) — for
    tests that train many models. *)

val tiny_suite : unit -> Suite.t
(** Cached tiny suite. *)

val training_chain : unit -> Markov_chain.t
(** The paper chain over {!alphabet8} at the default deviation. *)

val qcheck : ?count:int -> string -> 'a QCheck.arbitrary -> ('a -> bool)
  -> unit Alcotest.test_case
(** Register a QCheck property as an alcotest case. *)

val check_float : string -> epsilon:float -> float -> float -> unit
(** Alcotest float comparison with absolute tolerance. *)
