(* End-to-end socket tests for the serve layer's robustness machinery:
   the connection reaper ([max_connections] bounds concurrency, not the
   lifetime client count), slow-client eviction (exactly one eviction,
   service continues), the Health/Drain control frames, and the shard
   lifecycle supervisor (chaos crash -> journalled restart -> ack;
   exhausted fate -> one shard degraded, the others serving).

   Tests are not linted: spawning the server in a Domain here is fine —
   the R6 Domain restriction binds lib/, not test/. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let scorer_and_threshold =
  lazy
    (let suite = tiny_suite () in
     let stide =
       Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
     in
     let scorer =
       match Trained.compile stide with
       | Some scorer -> scorer
       | None -> Alcotest.fail "stide must compile"
     in
     (scorer, Trained.alarm_threshold stide))

(* {1 Plumbing} *)

let sock_counter = ref 0

let fresh_socket_path () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "seqdiv-test-serve-%d-%d.sock" (Unix.getpid ())
       !sock_counter)

let base_config ?(shards = 1) ?(queue_capacity = 64) ?journal_dir ?chaos
    ?(max_restarts = Serve.default_max_restarts)
    ?(write_timeout_ms = Serve.default_write_timeout_ms)
    ?(max_connections = 16) ?adaptive path =
  let scorer, threshold = Lazy.force scorer_and_threshold in
  {
    Serve.address = Serve.Unix_socket path;
    shards;
    queue_capacity;
    retry_after_ms = Serve.default_retry_after_ms;
    scorer;
    threshold;
    adaptive;
    model_tag = "test";
    journal_dir;
    resume = false;
    deadline = None;
    clock = Unix.gettimeofday;
    max_connections;
    max_restarts;
    write_timeout_ms;
    chaos;
  }

(* Run the server in a domain; returns after the listener is bound. *)
let start_server cfg =
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Serve.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  d

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

type client = { fd : Unix.file_descr; decoder : Frame.reader; rbuf : Bytes.t }

let client path =
  { fd = connect path; decoder = Frame.reader (); rbuf = Bytes.create 65536 }

let send c request =
  let b = Buffer.create 1024 in
  Frame.write_request b Frame.Binary request;
  let bytes = Buffer.to_bytes b in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write c.fd bytes !off (len - !off)
  done

let recv c =
  let rec go () =
    match Frame.next_response c.decoder with
    | Some r -> Some r
    | None -> (
        match Unix.read c.fd c.rbuf 0 (Bytes.length c.rbuf) with
        | 0 -> None
        | n ->
            Frame.feed_bytes c.decoder c.rbuf ~pos:0 ~len:n;
            go ()
        | exception
            Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
          ->
            None)
  in
  go ()

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let recv_exn c name =
  match recv c with
  | Some r -> r
  | None -> Alcotest.failf "%s: connection closed instead of a response" name

(* Shut the server down through the protocol and join its domain.  The
   quit frame must land on an admitted connection — under a tight
   [max_connections] the previous slot may not be reaped yet, so first
   prove admission with a stats roundtrip, retrying until a slot frees
   up. *)
let quit_server path server =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec admitted () =
    let c = client path in
    let answer =
      match send c Frame.Stats_request with
      | () -> recv c
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          None
    in
    match answer with
    | Some (Frame.Stats _) -> c
    | Some _ | None ->
        close_client c;
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "could not reach the server to shut it down"
        else begin
          Unix.sleepf 0.05;
          admitted ()
        end
  in
  let c = admitted () in
  (try send c Frame.Quit with Unix.Unix_error _ -> ());
  while recv c <> None do
    ()
  done;
  close_client c;
  ignore (Domain.join server : Frame.shard_stats list)

(* A session id routing to the wanted shard. *)
let session_for ~shards ~shard =
  let rec go s =
    if Frame.shard_of_session ~shards s = shard then s else go (s + 1)
  in
  go 0

let batch ~id sessions =
  Frame.Batch
    {
      id;
      events =
        List.map
          (fun session ->
            Frame.Data { session; symbols = [| 0; 1; 2; 3; 4; 5 |] })
          sessions;
    }

let health_of c =
  send c Frame.Health_request;
  match recv_exn c "health" with
  | Frame.Health h -> h
  | _ -> Alcotest.fail "expected a Health response"

(* {1 The reaper: max_connections bounds concurrency, not lifetime} *)

let test_reaper () =
  let path = fresh_socket_path () in
  let server = start_server (base_config ~max_connections:1 path) in
  (* Slot taken: the next accept is closed immediately (EOF without a
     response, even to a valid request). *)
  let a = client path in
  send a Frame.Stats_request;
  (match recv_exn a "conn A" with
  | Frame.Stats _ -> ()
  | _ -> Alcotest.fail "expected stats on the admitted connection");
  let b = client path in
  (match (send b Frame.Stats_request, recv b) with
  | (), None -> ()
  | (), Some _ -> Alcotest.fail "over-limit connection was served"
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  close_client b;
  (* Free the slot; the reaper must hand it to a new client within a
     few ticks — the limit never counts dead connections. *)
  close_client a;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec reconnect () =
    let c = client path in
    let answer =
      (* Over-limit connections are closed server-side at any point:
         a send into the closed socket (EPIPE/reset) means the same
         thing as reading EOF — the slot is still busy, retry. *)
      match send c Frame.Stats_request with
      | () -> recv c
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          None
    in
    match answer with
    | Some (Frame.Stats _) -> c
    | Some _ -> Alcotest.fail "expected stats"
    | None ->
        close_client c;
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "slot never freed by the reaper"
        else begin
          Unix.sleepf 0.05;
          reconnect ()
        end
  in
  let c = reconnect () in
  Alcotest.(check int) "one live connection" 1 (health_of c).Frame.connections;
  Alcotest.(check int) "no evictions" 0 (health_of c).Frame.evictions;
  close_client c;
  quit_server path server

(* {1 Slow-client eviction} *)

let test_eviction () =
  let path = fresh_socket_path () in
  let server = start_server (base_config ~write_timeout_ms:200 path) in
  (* A client that writes batches but never reads acks: once the socket
     buffer and the bounded out-channel fill, the server evicts it. *)
  let c1 = client path in
  let evicted = ref false in
  (try
     for id = 0 to 49_999 do
       if not !evicted then send c1 (batch ~id [ 0 ])
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
     evicted := true);
  Alcotest.(check bool) "flooding client evicted" true !evicted;
  close_client c1;
  (* Service continues for everyone else, and the eviction was counted
     exactly once (the evict/shutdown/close path is single-shot). *)
  let c2 = client path in
  send c2 (batch ~id:1_000_000 [ 0 ]);
  (match recv_exn c2 "post-eviction batch" with
  | Frame.Ack _ -> ()
  | Frame.Rejected _ -> () (* backpressure from the flood is fine *)
  | _ -> Alcotest.fail "expected ack or rejection after eviction");
  let rec settle tries =
    let h = health_of c2 in
    if h.Frame.evictions = 1 then h
    else if tries = 0 then h
    else begin
      Unix.sleepf 0.05;
      settle (tries - 1)
    end
  in
  let h = settle 40 in
  Alcotest.(check int) "exactly one eviction" 1 h.Frame.evictions;
  close_client c2;
  quit_server path server

(* {1 Health and drain frames} *)

let test_health_and_drain () =
  let path = fresh_socket_path () in
  let server = start_server (base_config ~shards:2 path) in
  let c = client path in
  let s0 = session_for ~shards:2 ~shard:0
  and s1 = session_for ~shards:2 ~shard:1 in
  send c (batch ~id:0 [ s0; s1 ]);
  (* One ack per touched shard. *)
  let ack_shards = ref [] in
  for _ = 1 to 2 do
    match recv_exn c "ack" with
    | Frame.Ack { shard; _ } -> ack_shards := shard :: !ack_shards
    | _ -> Alcotest.fail "expected an ack per shard"
  done;
  Alcotest.(check (list int)) "both shards answered" [ 0; 1 ]
    (List.sort compare !ack_shards);
  let h = health_of c in
  Alcotest.(check int) "two shards" 2 (List.length h.Frame.shards_health);
  List.iter
    (fun (sh : Frame.shard_health) ->
      Alcotest.(check bool) "alive" true sh.Frame.h_alive;
      Alcotest.(check bool) "not degraded" false sh.Frame.h_degraded;
      Alcotest.(check int) "no restarts" 0 sh.Frame.h_restarts;
      Alcotest.(check bool) "hint at least the floor" true
        (sh.Frame.h_retry_after_ms >= Serve.default_retry_after_ms))
    h.Frame.shards_health;
  Alcotest.(check bool) "not draining" false h.Frame.draining;
  (* Drain: the response arrives once every queue is idle, and carries
     the applied batch count; new work is rejected afterwards. *)
  send c Frame.Drain_request;
  (match recv_exn c "drained" with
  | Frame.Drained { batches } ->
      Alcotest.(check int) "both sub-batches counted" 2 batches
  | _ -> Alcotest.fail "expected a Drained response");
  send c (batch ~id:1 [ s0 ]);
  (match recv_exn c "post-drain batch" with
  | Frame.Rejected _ -> ()
  | _ -> Alcotest.fail "draining server must reject new batches");
  Alcotest.(check bool) "draining reported" true (health_of c).Frame.draining;
  close_client c;
  quit_server path server

(* {1 The supervisor: chaos crash -> journalled restart -> ack} *)

let with_temp_dir f =
  let dir = Filename.temp_file "seqdiv-test-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_supervised_restart () =
  with_temp_dir (fun dir ->
      let path = fresh_socket_path () in
      (* Every sub-batch is crash-fated for exactly one attempt: each
         batch kills the shard domain once, the supervisor restarts it
         from the journal, and the re-run acks.  The consecutive budget
         resets on every ack, so three batches mean three restarts and
         zero degradations. *)
      let chaos =
        Fault_plan.Serve.of_seed ~crash_rate:1.0 ~sticky:1 ~seed:3 ()
      in
      let server =
        start_server (base_config ~journal_dir:dir ~chaos ~max_restarts:2 path)
      in
      let c = client path in
      for id = 0 to 2 do
        send c (batch ~id [ 0 ]);
        match recv_exn c "chaos ack" with
        | Frame.Ack { id = acked; _ } ->
            Alcotest.(check int) "acked in order" id acked
        | Frame.Failed { reason; _ } ->
            Alcotest.failf "batch %d failed instead of restarting: %s" id
              reason
        | _ -> Alcotest.fail "expected an ack"
      done;
      let h = health_of c in
      (match h.Frame.shards_health with
      | [ sh ] ->
          Alcotest.(check int) "three restarts" 3 sh.Frame.h_restarts;
          Alcotest.(check bool) "alive" true sh.Frame.h_alive;
          Alcotest.(check bool) "not degraded" false sh.Frame.h_degraded
      | _ -> Alcotest.fail "expected one shard");
      close_client c;
      quit_server path server)

let test_degrade_isolates () =
  let path = fresh_socket_path () in
  (* No journal: there is no honest state to restart from, so a chaos
     crash degrades its shard.  The fate hash is pure, so pick batch
     ids whose shard-0 slice crashes and whose shard-1 slice does not —
     then check the degrade touched only shard 0. *)
  let chaos = Fault_plan.Serve.of_seed ~crash_rate:0.5 ~sticky:1 ~seed:9 () in
  let fate ~batch_id ~shard =
    Fault_plan.Serve.job_fate chaos
      ~key:(Fault_plan.Serve.job_key ~batch_id ~shard)
      ~attempt:0
  in
  let rec find_id pred i =
    if pred i then i
    else if i > 100_000 then Alcotest.fail "no batch id with wanted fate"
    else find_id pred (i + 1)
  in
  let id_crash =
    find_id
      (fun i -> fate ~batch_id:i ~shard:0 = Some Fault_plan.Serve.Crash)
      0
  in
  let id_clean = find_id (fun i -> fate ~batch_id:i ~shard:1 = None) 0 in
  let server = start_server (base_config ~shards:2 ~chaos path) in
  let c = client path in
  let s0 = session_for ~shards:2 ~shard:0
  and s1 = session_for ~shards:2 ~shard:1 in
  send c (batch ~id:id_crash [ s0 ]);
  (match recv_exn c "degraded sub" with
  | Frame.Failed { shard; events; reason; _ } ->
      Alcotest.(check int) "failed on shard 0" 0 shard;
      Alcotest.(check int) "events accounted" 1 events;
      Alcotest.(check bool) "reason names the degrade" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "expected the crashed sub-batch to fail");
  send c (batch ~id:id_clean [ s1 ]);
  (match recv_exn c "surviving shard" with
  | Frame.Ack { shard; _ } -> Alcotest.(check int) "shard 1 serves" 1 shard
  | _ -> Alcotest.fail "expected shard 1 to keep serving");
  let h = health_of c in
  List.iter
    (fun (sh : Frame.shard_health) ->
      if sh.Frame.h_shard = 0 then begin
        Alcotest.(check bool) "shard 0 degraded" true sh.Frame.h_degraded;
        Alcotest.(check bool) "shard 0 not alive" false sh.Frame.h_alive
      end
      else begin
        Alcotest.(check bool) "shard 1 not degraded" false sh.Frame.h_degraded;
        Alcotest.(check bool) "shard 1 alive" true sh.Frame.h_alive
      end)
    h.Frame.shards_health;
  (* A later batch for the degraded shard fails at admission, with its
     event count, while the live slice of the same batch is acked. *)
  let id_mixed =
    find_id
      (fun i -> i > id_clean && fate ~batch_id:i ~shard:1 = None)
      (id_clean + 1)
  in
  send c (batch ~id:id_mixed [ s0; s1 ]);
  let got_ack = ref false and got_failed = ref false in
  for _ = 1 to 2 do
    match recv_exn c "mixed batch" with
    | Frame.Ack { shard; _ } ->
        Alcotest.(check int) "live slice on shard 1" 1 shard;
        got_ack := true
    | Frame.Failed { shard; events; _ } ->
        Alcotest.(check int) "failed slice on shard 0" 0 shard;
        Alcotest.(check int) "failed slice events" 1 events;
        got_failed := true
    | _ -> Alcotest.fail "expected ack + failure for the mixed batch"
  done;
  Alcotest.(check bool) "mixed batch: ack and failure" true
    (!got_ack && !got_failed);
  close_client c;
  quit_server path server

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "reaper bounds concurrency" `Slow test_reaper;
          Alcotest.test_case "slow client evicted" `Slow test_eviction;
          Alcotest.test_case "health and drain" `Slow test_health_and_drain;
          Alcotest.test_case "supervised restart" `Slow test_supervised_restart;
          Alcotest.test_case "degrade isolates" `Slow test_degrade_isolates;
        ] );
    ]
