(* The run journal's promises: what it records it gives back, a torn
   tail never loses the valid prefix, a journal from a different run is
   refused, and a resumed run is byte-identical to a fresh one. *)

open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_report

let with_path f =
  let path = Filename.temp_file "seqdiv-test-journal" ".log" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let entry ~detector ~window ~anomaly_size outcome =
  { Journal.seed = 42; detector; window; anomaly_size; outcome }

let sample_entries =
  [
    entry ~detector:"stide" ~window:4 ~anomaly_size:2 (Outcome.Capable 0.75);
    entry ~detector:"stide" ~window:5 ~anomaly_size:2 (Outcome.Weak 0.25);
    entry ~detector:"markov" ~window:4 ~anomaly_size:3 Outcome.Blind;
  ]

let test_roundtrip () =
  with_path (fun path ->
      let j = Journal.start ~context:"ctx a=1" path in
      List.iter (Journal.record j) sample_entries;
      Journal.flush j;
      let j' = Journal.start ~resume:true ~context:"ctx a=1" path in
      Alcotest.(check int) "all entries recovered"
        (List.length sample_entries)
        (Journal.recovered j');
      Alcotest.(check int) "no torn lines" 0 (Journal.dropped_lines j');
      List.iter
        (fun e ->
          match
            Journal.lookup j' ~seed:e.Journal.seed ~detector:e.Journal.detector
              ~window:e.Journal.window ~anomaly_size:e.Journal.anomaly_size
          with
          | Some o ->
              Alcotest.(check bool)
                (Printf.sprintf "outcome for %s w=%d" e.Journal.detector
                   e.Journal.window)
                true
                (Outcome.equal o e.Journal.outcome)
          | None -> Alcotest.fail "recorded entry missing after resume")
        sample_entries)

let test_flush_idempotent_and_atomic () =
  with_path (fun path ->
      let j = Journal.start ~context:"ctx" path in
      List.iter (Journal.record j) sample_entries;
      Journal.flush j;
      let first = In_channel.with_open_bin path In_channel.input_all in
      Journal.flush j (* clean: must not rewrite *);
      let second = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) "clean flush rewrites nothing" first second;
      Alcotest.(check bool) "no tmp file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

let test_torn_tail_recovered () =
  with_path (fun path ->
      let j = Journal.start ~context:"ctx" path in
      List.iter (Journal.record j) sample_entries;
      Journal.flush j;
      (* Tear the file mid-way through the final line, as a kill during
         a (non-atomic) write would. *)
      let contents = In_channel.with_open_bin path In_channel.input_all in
      let torn = String.sub contents 0 (String.length contents - 10) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc torn);
      let j' = Journal.start ~resume:true ~context:"ctx" path in
      Alcotest.(check int) "valid prefix recovered"
        (List.length sample_entries - 1)
        (Journal.recovered j');
      Alcotest.(check int) "torn line counted" 1 (Journal.dropped_lines j'))

let test_context_mismatch_refused () =
  with_path (fun path ->
      let j = Journal.start ~context:"seed=1 alphabet=8" path in
      List.iter (Journal.record j) sample_entries;
      Journal.flush j;
      match Journal.start ~resume:true ~context:"seed=2 alphabet=8" path with
      | _ -> Alcotest.fail "expected Journal.Corrupt"
      | exception Journal.Corrupt _ -> ())

let test_bad_header_refused () =
  with_path (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not a journal\n");
      match Journal.start ~resume:true ~context:"ctx" path with
      | _ -> Alcotest.fail "expected Journal.Corrupt"
      | exception Journal.Corrupt _ -> ())

let test_failed_outcomes_rejected () =
  with_path (fun path ->
      let j = Journal.start ~context:"ctx" path in
      let fault =
        Fault.of_exn ~attempts:1 Exit (Printexc.get_raw_backtrace ())
      in
      match
        Journal.record j
          (entry ~detector:"stide" ~window:4 ~anomaly_size:2
             (Outcome.Failed fault))
      with
      | _ -> Alcotest.fail "Failed outcomes must not be journalled"
      | exception Invalid_argument _ -> ())

(* --- resume over the real engine --------------------------------------- *)

let suite_cache = ref None

let suite () =
  match !suite_cache with
  | Some s -> s
  | None ->
      let s =
        Suite.build
          {
            (Suite.scaled_params ~train_len:30_000 ~background_len:1_500) with
            Suite.dw_max = 6;
          }
      in
      suite_cache := Some s;
      s

let detectors () = List.map Registry.find_exn [ "stide"; "tstide"; "markov"; "lnb" ]
let context = "test-context"

let renderings maps =
  String.concat "\n" (List.map Ascii_map.render maps)

let test_resume_byte_identical () =
  (* Interrupt after two of four detectors (the per-detector flush makes
     that the natural crash boundary), then resume with the full list at
     jobs 1 and 4: identical bytes to an unjournalled fresh run. *)
  let fresh =
    renderings
      (Experiment.all_maps ~engine:(Engine.create ~jobs:1 ()) (suite ())
         (detectors ()))
  in
  List.iter
    (fun jobs ->
      with_path (fun path ->
          let j = Journal.start ~context path in
          let partial =
            match detectors () with d :: d' :: _ -> [ d; d' ] | _ -> []
          in
          ignore
            (Experiment.all_maps
               ~engine:(Engine.create ~jobs ())
               ~journal:j (suite ()) partial);
          let j' = Journal.start ~resume:true ~context path in
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: something to resume from" jobs)
            true
            (Journal.recovered j' > 0);
          let e = Engine.create ~jobs () in
          let maps =
            Experiment.all_maps ~engine:e ~journal:j' (suite ()) (detectors ())
          in
          let s = Engine.stats e in
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d: journalled cells not re-executed" jobs)
            (Journal.recovered j') s.Engine.cells_resumed;
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d: byte-identical to fresh run" jobs)
            fresh (renderings maps)))
    [ 1; 4 ]

let test_resume_after_torn_tail () =
  with_path (fun path ->
      let j = Journal.start ~context path in
      ignore
        (Experiment.all_maps ~engine:(Engine.create ()) ~journal:j (suite ())
           (detectors ()));
      let contents = In_channel.with_open_bin path In_channel.input_all in
      let torn = String.sub contents 0 (String.length contents - 25) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc torn);
      let j' = Journal.start ~resume:true ~context path in
      Alcotest.(check bool) "tail dropped" true (Journal.dropped_lines j' > 0);
      let fresh =
        renderings
          (Experiment.all_maps ~engine:(Engine.create ()) (suite ())
             (detectors ()))
      in
      let maps =
        Experiment.all_maps ~engine:(Engine.create ()) ~journal:j' (suite ())
          (detectors ())
      in
      Alcotest.(check string) "torn journal still resumes byte-identically"
        fresh (renderings maps))

let test_failed_cells_retried_on_resume () =
  (* Fatal chaos fails some cells; they are never journalled, so a
     resume without chaos heals exactly those cells and the final maps
     match a healthy run. *)
  with_path (fun path ->
      let j = Journal.start ~context path in
      let plan =
        Fault_plan.of_seed ~transient_rate:0.0 ~fatal_rate:0.1 ~seed:5 ()
      in
      let e = Engine.create ~jobs:4 ~fault_plan:plan () in
      let degraded =
        Experiment.all_maps ~engine:e ~journal:j (suite ()) (detectors ())
      in
      let failed =
        List.fold_left
          (fun acc m -> acc + List.length (Performance_map.failed_cells m))
          0 degraded
      in
      Alcotest.(check bool) "chaos failed some cells" true (failed > 0);
      let total =
        List.fold_left (fun acc m -> acc + Performance_map.cell_count m) 0 degraded
      in
      let j' = Journal.start ~resume:true ~context path in
      Alcotest.(check int) "failed cells stayed out of the journal"
        (total - failed) (Journal.recovered j');
      let e' = Engine.create ~jobs:4 () in
      let healed =
        Experiment.all_maps ~engine:e' ~journal:j' (suite ()) (detectors ())
      in
      let fresh =
        renderings
          (Experiment.all_maps ~engine:(Engine.create ()) (suite ())
             (detectors ()))
      in
      Alcotest.(check int) "resume re-executed only the failed cells" failed
        ((Engine.stats e').Engine.score_tasks);
      Alcotest.(check string) "healed run matches a healthy one" fresh
        (renderings healed))

let () =
  Alcotest.run "journal"
    [
      ( "format",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "flush idempotent" `Quick
            test_flush_idempotent_and_atomic;
          Alcotest.test_case "torn tail recovered" `Quick
            test_torn_tail_recovered;
          Alcotest.test_case "context mismatch refused" `Quick
            test_context_mismatch_refused;
          Alcotest.test_case "bad header refused" `Quick
            test_bad_header_refused;
          Alcotest.test_case "failed outcomes rejected" `Quick
            test_failed_outcomes_rejected;
        ] );
      ( "resume",
        [
          Alcotest.test_case "resume byte-identical" `Slow
            test_resume_byte_identical;
          Alcotest.test_case "resume after torn tail" `Slow
            test_resume_after_torn_tail;
          Alcotest.test_case "failed cells retried on resume" `Slow
            test_failed_cells_retried_on_resume;
        ] );
    ]
