open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_test_support

let training () =
  (Seqdiv_test_support.tiny_suite ()).Seqdiv_synth.Suite.training

let probe () =
  let suite = tiny_suite () in
  let s = Seqdiv_synth.Suite.stream suite ~anomaly_size:4 ~window:5 in
  s.Seqdiv_synth.Suite.injection.Seqdiv_synth.Injector.trace

let responses_equal a b =
  Array.length a.Response.items = Array.length b.Response.items
  && Array.for_all2
       (fun (x : Response.item) (y : Response.item) ->
         x.Response.start = y.Response.start
         && Float.equal x.Response.score y.Response.score)
       a.Response.items b.Response.items

let test_stide_round_trip () =
  let model = Stide.train ~window:5 (training ()) in
  let restored = Model_io.load_stide (Model_io.save_stide model) in
  Alcotest.(check int) "window" 5 (Stide.window restored);
  Alcotest.(check int) "cardinality"
    (Seq_db.cardinal (Stide.db model))
    (Seq_db.cardinal (Stide.db restored));
  Alcotest.(check int) "totals"
    (Seq_db.total (Stide.db model))
    (Seq_db.total (Stide.db restored));
  Alcotest.(check bool) "identical scoring" true
    (responses_equal (Stide.score model (probe ())) (Stide.score restored (probe ())))

let test_markov_round_trip () =
  let model = Markov.train ~window:4 (training ()) in
  let restored = Model_io.load_markov (Model_io.save_markov model) in
  Alcotest.(check int) "window" 4 (Markov.window restored);
  Alcotest.(check int) "contexts" (Markov.contexts model)
    (Markov.contexts restored);
  Alcotest.(check bool) "identical scoring" true
    (responses_equal
       (Markov.score model (probe ()))
       (Markov.score restored (probe ())))

let test_markov_probabilities_preserved () =
  let model = Markov.train ~window:2 (trace8 [ 0; 1; 0; 1; 0; 2 ]) in
  let restored = Model_io.load_markov (Model_io.save_markov model) in
  check_float "p(1|0)" ~epsilon:1e-12 (2.0 /. 3.0)
    (Markov.probability restored ~context:[| 0 |] ~next:1);
  check_float "p(2|0)" ~epsilon:1e-12 (1.0 /. 3.0)
    (Markov.probability restored ~context:[| 0 |] ~next:2)

let test_stide_file_round_trip () =
  let path = Filename.temp_file "seqdiv" ".stide" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let model = Stide.train ~window:3 (trace8 [ 0; 1; 2; 3; 4; 0; 1 ]) in
      Model_io.save_stide_file path model;
      let restored = Model_io.load_stide_file path in
      Alcotest.(check int) "cardinality"
        (Seq_db.cardinal (Stide.db model))
        (Seq_db.cardinal (Stide.db restored)))

let test_markov_file_round_trip () =
  let path = Filename.temp_file "seqdiv" ".markov" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let model = Markov.train ~window:3 (trace8 [ 0; 1; 2; 3; 4; 0; 1 ]) in
      Model_io.save_markov_file path model;
      let restored = Model_io.load_markov_file path in
      Alcotest.(check int) "contexts" (Markov.contexts model)
        (Markov.contexts restored))

let test_bad_inputs_rejected () =
  let fails f s =
    match f s with
    | _ -> Alcotest.fail "expected Parse_error"
    | exception Seqdiv_stream.Parse_error.Error _ -> ()
  in
  fails Model_io.load_stide "";
  fails Model_io.load_stide "#wrong header";
  fails Model_io.load_stide "#seqdiv-stide 1 window=3\nnot-a-count 1,2,3";
  fails Model_io.load_stide "#seqdiv-stide 1 window=3\n2 1,2";
  fails Model_io.load_markov "";
  fails Model_io.load_markov "#seqdiv-markov 1 window=2 alphabet=4\nmalformed";
  fails Model_io.load_markov "#seqdiv-markov 1 window=2 alphabet=4\n0 | 1,2,3"

let test_missing_file_raises_parse_error () =
  (* A missing or unreadable model file must surface as a Parse_error
     carrying the path, not a bare Sys_error from the runtime. *)
  let missing = "/nonexistent/seqdiv-no-such-model" in
  let fails what f =
    match f missing with
    | _ -> Alcotest.failf "%s: expected Parse_error" what
    | exception Seqdiv_stream.Parse_error.Error msg ->
        Alcotest.(check bool)
          (what ^ " message carries the path")
          true
          (let n = String.length msg and m = String.length missing in
           let rec scan i =
             i + m <= n && (String.sub msg i m = missing || scan (i + 1))
           in
           scan 0)
  in
  fails "load_stide_file" Model_io.load_stide_file;
  fails "load_markov_file" Model_io.load_markov_file;
  fails "load_flat_file" (fun p -> Model_io.load_flat_file p)

let test_flat_rejects_garbage () =
  let path = Filename.temp_file "seqdiv" ".flat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "definitely not a flat model");
      match Model_io.load_flat_file path with
      | _ -> Alcotest.fail "expected Parse_error on garbage flat file"
      | exception Seqdiv_stream.Parse_error.Error _ -> ())

let test_save_is_deterministic () =
  let model = Markov.train ~window:3 (training ()) in
  Alcotest.(check string) "stable output" (Model_io.save_markov model)
    (Model_io.save_markov model)

let () =
  Alcotest.run "model_io"
    [
      ( "model_io",
        [
          Alcotest.test_case "stide round trip" `Quick test_stide_round_trip;
          Alcotest.test_case "markov round trip" `Quick test_markov_round_trip;
          Alcotest.test_case "markov probabilities" `Quick
            test_markov_probabilities_preserved;
          Alcotest.test_case "stide file" `Quick test_stide_file_round_trip;
          Alcotest.test_case "markov file" `Quick test_markov_file_round_trip;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs_rejected;
          Alcotest.test_case "missing files" `Quick
            test_missing_file_raises_parse_error;
          Alcotest.test_case "garbage flat file" `Quick
            test_flat_rejects_garbage;
          Alcotest.test_case "deterministic save" `Quick test_save_is_deterministic;
        ] );
    ]
