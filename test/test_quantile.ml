(* Statistical property battery for the streaming quantile sketches.

   The headline theorem under test: after n observations a GK summary
   built at epsilon answers every rank query within ⌊ε·n⌋ ranks of the
   exact sorted-order statistic — on every adversarial stream shape,
   at every size, under any insertion batching, across merges, and
   through serialization. *)

open Seqdiv_util
open Seqdiv_core
open Seqdiv_test_support

(* --- stream shapes ------------------------------------------------------ *)

type shape = Uniform | Sorted | Reversed | Constant | Duplicates | Gaussian

let shape_name = function
  | Uniform -> "uniform"
  | Sorted -> "sorted"
  | Reversed -> "reversed"
  | Constant -> "constant"
  | Duplicates -> "duplicates"
  | Gaussian -> "gaussian"

let all_shapes = [ Uniform; Sorted; Reversed; Constant; Duplicates; Gaussian ]

let stream_of_shape shape ~n rng =
  let uniform () =
    Array.init n (fun _ -> Prng.float rng 1000.0 -. 500.0)
  in
  match shape with
  | Uniform -> uniform ()
  | Sorted ->
      let a = uniform () in
      Array.sort Float.compare a;
      a
  | Reversed ->
      let a = uniform () in
      Array.sort (fun x y -> Float.compare y x) a;
      a
  | Constant -> Array.make n 42.5
  | Duplicates ->
      (* A handful of heavy values: ranks pile onto ties, the classic
         GK stress (the summary must not collapse equal values). *)
      Array.init n (fun _ -> float_of_int (Prng.int rng 5))
  | Gaussian -> Array.init n (fun _ -> Prng.gaussian rng)

let phis = [ 0.0; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ]

(* The exact 1-based rank interval a value occupies in the data:
   [count(< v) + 1, count(<= v)] (empty when v is absent, in which
   case the interval collapses around its insertion point). *)
let rank_interval data v =
  let below = ref 0 and at_or_below = ref 0 in
  Array.iter
    (fun x ->
      if x < v then incr below;
      if x <= v then incr at_or_below)
    data;
  (!below + 1, !at_or_below)

(* Does [v] satisfy the GK guarantee for the phi-quantile of [data]
   within [err] ranks?  True iff the value's rank interval intersects
   [r - err, r + err]. *)
let within_rank data ~phi ~err v =
  let n = Array.length data in
  let r =
    Stdlib.min n
      (Stdlib.max 1 (int_of_float (Float.ceil (phi *. float_of_int n))))
  in
  let lo, hi = rank_interval data v in
  lo <= r + err && hi >= r - err

let gk_of_stream ~epsilon data =
  let q = Quantile.create ~epsilon in
  Array.iter (Quantile.observe q) data;
  q

let check_gk_bound ~what ~epsilon data q =
  let n = Array.length data in
  let err = int_of_float (epsilon *. float_of_int n) in
  List.iter
    (fun phi ->
      let v = Quantile.quantile q phi in
      if not (within_rank data ~phi ~err v) then
        Alcotest.failf "%s: phi=%g eps=%g n=%d answered %h outside ±%d ranks"
          what phi epsilon n v err)
    phis

(* --- GK: the ε-bound on adversarial shapes ----------------------------- *)

let test_gk_bound_shapes () =
  let sizes = [ 1; 2; 3; 7; 64; 1_000; 10_000; 100_000 ] in
  List.iter
    (fun shape ->
      List.iter
        (fun n ->
          List.iter
            (fun epsilon ->
              let rng = Prng.create ~seed:(n + (31 * List.length phis)) in
              let data = stream_of_shape shape ~n rng in
              let q = gk_of_stream ~epsilon data in
              Alcotest.(check int)
                (Printf.sprintf "%s n=%d count" (shape_name shape) n)
                n (Quantile.count q);
              check_gk_bound
                ~what:(Printf.sprintf "gk %s" (shape_name shape))
                ~epsilon data q)
            [ 0.05; 0.005 ])
        sizes)
    all_shapes

let test_gk_extremes_exact () =
  let rng = Prng.create ~seed:7 in
  let data = stream_of_shape Uniform ~n:5_000 rng in
  let q = gk_of_stream ~epsilon:0.01 data in
  let sorted = Array.copy data in
  Array.sort Float.compare sorted;
  Alcotest.(check (float 0.0))
    "max retained exactly"
    sorted.(Array.length sorted - 1)
    (Quantile.quantile q 1.0);
  (* The minimum anchors rank 1; a phi=0 query may legally sit a few
     ranks up, but the minimum must still be inside the summary. *)
  Alcotest.(check bool)
    "min within bound" true
    (Quantile.quantile q 0.0 <= sorted.(int_of_float (0.01 *. 5_000.0)))

(* The whole point of the summary: memory stays sub-linear.  The
   constant is loose (the adjacent-merge compress has no tight space
   theorem) but a broken compress — linear retention — fails it by two
   orders of magnitude. *)
let test_gk_bounded_memory () =
  List.iter
    (fun shape ->
      let rng = Prng.create ~seed:11 in
      let n = 100_000 in
      let data = stream_of_shape shape ~n rng in
      let epsilon = 0.01 in
      let q = gk_of_stream ~epsilon data in
      let cap = int_of_float (8.0 /. epsilon) in
      if Quantile.tuples q > cap then
        Alcotest.failf "%s: %d tuples retained after %d observations (cap %d)"
          (shape_name shape) (Quantile.tuples q) n cap)
    all_shapes

(* The inverse query: rank estimates must track the exact empirical
   CDF within epsilon on every shape — this is what adaptive
   thresholds lean on when they price the tail mass above the current
   threshold. *)
let test_gk_rank_bound () =
  let epsilon = 0.01 in
  List.iter
    (fun shape ->
      List.iter
        (fun n ->
          let rng = Prng.create ~seed:(97 + n) in
          let data = stream_of_shape shape ~n rng in
          let q = gk_of_stream ~epsilon data in
          let sorted = Array.copy data in
          Array.sort Float.compare sorted;
          let exact_cdf x =
            let c = ref 0 in
            Array.iter (fun v -> if v <= x then incr c) data;
            float_of_int !c /. float_of_int n
          in
          let probes =
            sorted.(0) :: sorted.(n - 1)
            :: List.init 9 (fun i -> sorted.(i * (n - 1) / 8))
            @ List.init 8 (fun i ->
                  (* midpoints between adjacent probe values: exercise
                     queries at values absent from the stream *)
                  (sorted.(i * (n - 1) / 8) +. sorted.((i + 1) * (n - 1) / 8))
                  /. 2.0)
          in
          List.iter
            (fun x ->
              let est = Quantile.rank q x in
              let exact = exact_cdf x in
              let slack = epsilon +. (2.0 /. float_of_int n) in
              if Float.abs (est -. exact) > slack then
                Alcotest.failf "%s n=%d: rank %h answered %g, exact %g (±%g)"
                  (shape_name shape) n x est exact slack)
            probes;
          (* The exact extremes pin the ends. *)
          check_float "below min" ~epsilon:0.0 0.0
            (Quantile.rank q (sorted.(0) -. 1.0));
          check_float "at max" ~epsilon:0.0 1.0 (Quantile.rank q sorted.(n - 1)))
        [ 64; 5_000 ])
    all_shapes

let test_gk_nan_rejected () =
  let q = Quantile.create ~epsilon:0.1 in
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Quantile.observe: NaN") (fun () ->
      Quantile.observe q Float.nan);
  Alcotest.check_raises "empty query rejected"
    (Invalid_argument "Quantile.quantile: empty summary") (fun () ->
      ignore (Quantile.quantile q 0.5))

(* --- GK: determinism under batching ------------------------------------ *)

let scores_arb =
  QCheck.(
    list_of_size Gen.(1 -- 400)
      (map (fun i -> float_of_int (i - 500) /. 7.0) (int_bound 1000)))

let chunked_arb =
  (* A stream plus an arbitrary chunking of it. *)
  QCheck.(pair scores_arb (list_of_size Gen.(0 -- 20) (1 -- 50)))

let prop_batch_invariance (scores, cuts) =
  let one = Quantile.create ~epsilon:0.02 in
  List.iter (Quantile.observe one) scores;
  (* Re-feed the same stream in the generated chunk sizes: state must
     be bit-identical — compression triggers on observation counts,
     never on buffer shapes. *)
  let batched = Quantile.create ~epsilon:0.02 in
  let remaining = ref scores in
  List.iter
    (fun cut ->
      let rec take k =
        if k > 0 then
          match !remaining with
          | [] -> ()
          | x :: rest ->
              remaining := rest;
              Quantile.observe batched x;
              take (k - 1)
      in
      take cut)
    cuts;
  List.iter (Quantile.observe batched) !remaining;
  Quantile.equal one batched

(* --- GK: merge ---------------------------------------------------------- *)

let prop_merge_commutative (xs, ys) =
  let a = Quantile.create ~epsilon:0.03 in
  List.iter (Quantile.observe a) xs;
  let b = Quantile.create ~epsilon:0.02 in
  List.iter (Quantile.observe b) ys;
  Quantile.equal (Quantile.merge a b) (Quantile.merge b a)

let test_merge_bound () =
  (* Halves summarised at ε/2 merge into an ε summary whose widened
     bound must hold against the exact sorted concatenation. *)
  let epsilon = 0.02 in
  List.iter
    (fun shape ->
      let rng = Prng.create ~seed:23 in
      let n = 20_000 in
      let data = stream_of_shape shape ~n rng in
      let a = Quantile.create ~epsilon:(epsilon /. 2.0) in
      let b = Quantile.create ~epsilon:(epsilon /. 2.0) in
      Array.iteri
        (fun i v -> Quantile.observe (if i < n / 2 then a else b) v)
        data;
      let m = Quantile.merge a b in
      check_float "merged epsilon" ~epsilon:1e-15 epsilon
        (Quantile.epsilon m);
      Alcotest.(check int) "merged count" n (Quantile.count m);
      check_gk_bound
        ~what:(Printf.sprintf "merge %s" (shape_name shape))
        ~epsilon data m)
    all_shapes

let test_merge_order_bound () =
  (* Folding k chunk-summaries in any association stays within the
     summed bound. *)
  let rng = Prng.create ~seed:29 in
  let n = 12_000 in
  let k = 4 in
  let data = stream_of_shape Uniform ~n rng in
  let parts =
    Array.init k (fun p ->
        let q = Quantile.create ~epsilon:0.005 in
        for i = 0 to n - 1 do
          if i mod k = p then Quantile.observe q data.(i)
        done;
        q)
  in
  let left =
    Array.fold_left
      (fun acc q -> match acc with None -> Some q | Some m -> Some (Quantile.merge m q))
      None parts
  in
  let right =
    Array.fold_right
      (fun q acc -> match acc with None -> Some q | Some m -> Some (Quantile.merge q m))
      parts None
  in
  match (left, right) with
  | Some l, Some r ->
      check_gk_bound ~what:"merge fold-left" ~epsilon:(Quantile.epsilon l) data
        l;
      check_gk_bound ~what:"merge fold-right" ~epsilon:(Quantile.epsilon r)
        data r;
      check_float "fold epsilons agree" ~epsilon:1e-15 (Quantile.epsilon l)
        (Quantile.epsilon r)
  | _ -> Alcotest.fail "no parts"

(* --- GK: serialization -------------------------------------------------- *)

let prop_gk_roundtrip scores =
  let q = Quantile.create ~epsilon:0.04 in
  List.iter (Quantile.observe q) scores;
  match Quantile.of_string (Quantile.to_string q) with
  | Some q' ->
      Quantile.equal q q'
      && (scores = [] || Quantile.quantile q 0.9 = Quantile.quantile q' 0.9)
  | None -> false

let test_gk_token_shape () =
  let q = Quantile.create ~epsilon:0.1 in
  List.iter (Quantile.observe q) [ 3.0; 1.0; 2.0 ];
  let tok = Quantile.to_string q in
  Alcotest.(check bool) "no spaces" false (String.contains tok ' ');
  Alcotest.(check bool) "tagged" true
    (String.length tok > 4 && String.sub tok 0 4 = "gk1:")

let test_gk_of_string_rejects () =
  List.iter
    (fun bad ->
      match Quantile.of_string bad with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted malformed token %S" bad)
    [
      "";
      "nonsense";
      "gk1:zz:3:3:0:";
      (* count lies about the tuples *)
      "gk1:3fb999999999999a:3:3:9:3ff0000000000000.1.0";
      (* unsorted tuple values *)
      "gk1:3fb999999999999a:2:2:2:4000000000000000.1.0,3ff0000000000000.1.0";
      (* g must be >= 1 *)
      "gk1:3fb999999999999a:1:1:1:3ff0000000000000.0.0";
    ]

(* --- P² ------------------------------------------------------------------ *)

let test_p2_exact_below_five () =
  let t = Quantile.P2.create ~phi:0.5 in
  List.iter (Quantile.P2.observe t) [ 9.0; 1.0; 5.0 ];
  Alcotest.(check (float 0.0)) "exact small-sample median" 5.0
    (Quantile.P2.quantile t)

let test_p2_convergence () =
  (* P² is heuristic — no deterministic bound — so the battery asserts
     rank-convergence with per-shape tolerances: tight on exchangeable
     streams, loose on the monotone arrivals that stress its marker
     interpolation. *)
  let n = 50_000 in
  List.iter
    (fun shape ->
      let tol =
        match shape with
        | Uniform | Gaussian | Constant -> 0.05
        | Sorted | Reversed -> 0.15
        (* Five atoms of mass 0.2 each: P²'s parabolic interpolation
           lands between atoms, so its rank distance to the target is
           bounded by an atom's mass, not by the sample size.  (The GK
           summary has no such gap — see the eps-bound suite.) *)
        | Duplicates -> 0.25
      in
      List.iter
        (fun phi ->
          let rng = Prng.create ~seed:101 in
          let data = stream_of_shape shape ~n rng in
          let t = Quantile.P2.create ~phi in
          Array.iter (Quantile.P2.observe t) data;
          let err = int_of_float (tol *. float_of_int n) in
          if not (within_rank data ~phi ~err (Quantile.P2.quantile t)) then
            Alcotest.failf "p2 %s: phi=%g estimate %h off by > %g of ranks"
              (shape_name shape) phi (Quantile.P2.quantile t) tol)
        [ 0.5; 0.9; 0.95 ])
    all_shapes

let prop_p2_roundtrip (scores, phi_i) =
  let phi = float_of_int phi_i /. 20.0 in
  let t = Quantile.P2.create ~phi in
  List.iter (Quantile.P2.observe t) scores;
  match Quantile.P2.of_string (Quantile.P2.to_string t) with
  | Some t' -> Quantile.P2.equal t t'
  | None -> false

let test_p2_rejects () =
  List.iter
    (fun bad ->
      match Quantile.P2.of_string bad with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted malformed token %S" bad)
    [ ""; "p21:::::"; "p21:3fe0000000000000:1:0,0,0,0:1,2,3,4,5:0,0,0,0,0" ]

let () =
  Alcotest.run "quantile"
    [
      ( "gk",
        [
          Alcotest.test_case "eps bound on adversarial shapes" `Quick
            test_gk_bound_shapes;
          Alcotest.test_case "extremes exact" `Quick test_gk_extremes_exact;
          Alcotest.test_case "bounded memory" `Quick test_gk_bounded_memory;
          Alcotest.test_case "rank tracks the exact CDF" `Quick
            test_gk_rank_bound;
          Alcotest.test_case "NaN and empty rejected" `Quick
            test_gk_nan_rejected;
          qcheck ~count:300 "batch invariance" chunked_arb
            prop_batch_invariance;
        ] );
      ( "merge",
        [
          qcheck ~count:200 "commutative (bit level)"
            QCheck.(pair scores_arb scores_arb)
            prop_merge_commutative;
          Alcotest.test_case "halved-eps merge bound" `Quick test_merge_bound;
          Alcotest.test_case "fold-order bound" `Quick test_merge_order_bound;
        ] );
      ( "serialization",
        [
          qcheck ~count:300 "gk roundtrip" scores_arb prop_gk_roundtrip;
          Alcotest.test_case "token journal-safe" `Quick test_gk_token_shape;
          Alcotest.test_case "malformed rejected" `Quick
            test_gk_of_string_rejects;
          qcheck ~count:200 "p2 roundtrip"
            QCheck.(pair scores_arb (int_bound 20))
            prop_p2_roundtrip;
          Alcotest.test_case "p2 malformed rejected" `Quick test_p2_rejects;
        ] );
      ( "p2",
        [
          Alcotest.test_case "exact below five" `Quick
            test_p2_exact_below_five;
          Alcotest.test_case "rank convergence by shape" `Quick
            test_p2_convergence;
        ] );
    ]
