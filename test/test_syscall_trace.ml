open Seqdiv_stream
open Seqdiv_test_support

let sample = "100 5\n100 3\n200 5\n100 7\n200 3\n"

let test_parse_groups_by_pid () =
  let sessions, mapping = Syscall_trace.parse sample in
  Alcotest.(check int) "two processes" 2 (Sessions.count sessions);
  (match Sessions.traces sessions with
  | [ first; second ] ->
      (* pid 100: calls 5 3 7 -> symbols 0 1 2; pid 200: 5 3 -> 0 1 *)
      Alcotest.(check (array int)) "pid 100 events" [| 0; 1; 2 |]
        (Trace.to_array first);
      Alcotest.(check (array int)) "pid 200 events" [| 0; 1 |]
        (Trace.to_array second)
  | _ -> Alcotest.fail "expected two sessions");
  Alcotest.(check (array int)) "mapping" [| 5; 3; 7 |] mapping

let test_parse_compacts_alphabet () =
  let sessions, mapping = Syscall_trace.parse "1 1000\n1 5\n1 1000\n" in
  Alcotest.(check int) "two distinct calls" 2 (Array.length mapping);
  Alcotest.(check int) "alphabet size" 2
    (Alphabet.size (Sessions.alphabet sessions));
  Alcotest.(check int) "call name" 1000 (Syscall_trace.syscall_name mapping 0)

let test_parse_tabs_and_blanks () =
  let sessions, _ = Syscall_trace.parse "1\t5\n\n1  3\n" in
  Alcotest.(check int) "one process" 1 (Sessions.count sessions);
  Alcotest.(check int) "two events" 2 (Sessions.total_length sessions)

let test_parse_rejects_garbage () =
  let fails s =
    match Syscall_trace.parse s with
    | _ -> Alcotest.fail "expected Parse_error"
    | exception Seqdiv_stream.Parse_error.Error _ -> ()
  in
  fails "1 2 3\n";
  fails "x 2\n";
  fails "1 -2\n";
  fails ""

let test_render_round_trip () =
  let sessions, mapping = Syscall_trace.parse sample in
  let text = Syscall_trace.render sessions mapping in
  let reparsed, mapping2 = Syscall_trace.parse text in
  Alcotest.(check int) "same count" (Sessions.count sessions)
    (Sessions.count reparsed);
  Alcotest.(check (array int)) "same mapping" mapping mapping2;
  List.iter2
    (fun a b -> Alcotest.(check bool) "same trace" true (Trace.equal a b))
    (Sessions.traces sessions)
    (Sessions.traces reparsed)

let test_file_round_trip () =
  let path = Filename.temp_file "seqdiv" ".int" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc sample;
      close_out oc;
      let sessions, _ = Syscall_trace.parse_file path in
      Alcotest.(check int) "two processes" 2 (Sessions.count sessions))

let test_stide_on_parsed_sessions () =
  (* End-to-end: train Stide on parsed sessions, flag a foreign pattern. *)
  let text =
    String.concat ""
      (List.init 50 (fun i -> Printf.sprintf "%d 4\n%d 2\n%d 7\n" i i i))
  in
  let sessions, _ = Syscall_trace.parse text in
  let db = Sessions.seq_db sessions ~width:2 in
  let stide = Seqdiv_detectors.Stide.train_of_db db in
  let alphabet = Sessions.alphabet sessions in
  (* symbols: 4->0, 2->1, 7->2; the pair (2, 4) i.e. symbols (1, 0) never
     occurs inside a session *)
  let r =
    Seqdiv_detectors.Stide.score stide (Trace.of_list alphabet [ 1; 0 ])
  in
  Alcotest.(check (float 0.0)) "foreign within-session pair" 1.0
    (Seqdiv_detectors.Response.max_score r)

let prop_round_trip =
  qcheck ~count:60 "render/parse round trip"
    QCheck.(
      list_of_size Gen.(1 -- 5)
        (list_of_size Gen.(1 -- 20) (int_bound 6)))
    (fun sessions_symbols ->
      let alphabet = Alphabet.make 7 in
      let sessions =
        Sessions.of_traces
          (List.map (Trace.of_list alphabet) sessions_symbols)
      in
      let mapping = Array.init 7 (fun i -> 100 + i) in
      let reparsed, _ = Syscall_trace.parse (Syscall_trace.render sessions mapping) in
      List.length (Sessions.traces reparsed) = List.length sessions_symbols
      && List.for_all2
           (fun original reparsed_trace ->
             (* symbol identities may be renumbered; lengths and
                within-session equality pattern must survive *)
             Trace.length reparsed_trace = Trace.length original)
           (Sessions.traces sessions)
           (Sessions.traces reparsed))

let () =
  Alcotest.run "syscall_trace"
    [
      ( "syscall_trace",
        [
          Alcotest.test_case "groups by pid" `Quick test_parse_groups_by_pid;
          Alcotest.test_case "compacts alphabet" `Quick test_parse_compacts_alphabet;
          Alcotest.test_case "tabs and blanks" `Quick test_parse_tabs_and_blanks;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "render round trip" `Quick test_render_round_trip;
          Alcotest.test_case "file round trip" `Quick test_file_round_trip;
          Alcotest.test_case "stide end-to-end" `Quick test_stide_on_parsed_sessions;
          prop_round_trip;
        ] );
    ]
