open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_test_support

let test_paper_params_shape () =
  let p = Suite.paper_params in
  Alcotest.(check int) "alphabet" 8 p.Suite.alphabet_size;
  Alcotest.(check int) "training" 1_000_000 p.Suite.train_len;
  Alcotest.(check int) "as range" 2 p.Suite.as_min;
  Alcotest.(check int) "as range max" 9 p.Suite.as_max;
  Alcotest.(check int) "dw range" 2 p.Suite.dw_min;
  Alcotest.(check int) "dw range max" 15 p.Suite.dw_max;
  check_float "rare threshold" ~epsilon:0.0 0.005 p.Suite.rare_threshold

let test_stream_count () =
  (* The paper's 112 test streams: 8 anomaly sizes x 14 windows. *)
  let suite = small_suite () in
  Alcotest.(check int) "112 streams" 112 (Array.length suite.Suite.streams)

let test_ranges () =
  let suite = small_suite () in
  Alcotest.(check (list int)) "anomaly sizes" [ 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Suite.anomaly_sizes suite);
  Alcotest.(check (list int)) "windows"
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Suite.windows suite)

let test_stream_lookup () =
  let suite = small_suite () in
  let s = Suite.stream suite ~anomaly_size:7 ~window:11 in
  Alcotest.(check int) "anomaly size" 7 s.Suite.anomaly_size;
  Alcotest.(check int) "window" 11 s.Suite.window;
  Alcotest.(check int) "anomaly length" 7
    (Array.length s.Suite.injection.Injector.anomaly)

let test_every_stream_has_single_mfs () =
  let suite = small_suite () in
  Array.iter
    (fun (s : Suite.test_stream) ->
      match Mfs.verify suite.Suite.index s.Suite.injection.Injector.anomaly with
      | Mfs.Ok_minimal_foreign -> ()
      | _ ->
          Alcotest.fail
            (Printf.sprintf "stream AS=%d DW=%d anomaly is not an MFS"
               s.Suite.anomaly_size s.Suite.window))
    suite.Suite.streams

let test_deterministic_in_seed () =
  let p = { tiny_params with Suite.train_len = 20_000 } in
  let a = Suite.build p and b = Suite.build p in
  Alcotest.(check bool) "same training" true
    (Trace.equal a.Suite.training b.Suite.training);
  let sa = Suite.stream a ~anomaly_size:4 ~window:5 in
  let sb = Suite.stream b ~anomaly_size:4 ~window:5 in
  Alcotest.(check bool) "same streams" true
    (Trace.equal sa.Suite.injection.Injector.trace
       sb.Suite.injection.Injector.trace)

let test_seed_changes_data () =
  let p = { tiny_params with Suite.train_len = 20_000 } in
  let a = Suite.build p and b = Suite.build { p with Suite.seed = 9 } in
  Alcotest.(check bool) "different training" false
    (Trace.equal a.Suite.training b.Suite.training)

let test_validation () =
  let bad field =
    Alcotest.check_raises field (Invalid_argument ("Suite: " ^ field))
  in
  bad "as_min < 2" (fun () ->
      ignore (Suite.build { small_params with Suite.as_min = 1 }));
  bad "dw_min < 2" (fun () ->
      ignore (Suite.build { small_params with Suite.dw_min = 1 }));
  bad "alphabet_size < 5" (fun () ->
      ignore (Suite.build { small_params with Suite.alphabet_size = 3 }));
  bad "rare_threshold out of range" (fun () ->
      ignore (Suite.build { small_params with Suite.rare_threshold = 1.5 }));
  bad "train_len too small" (fun () ->
      ignore (Suite.build { small_params with Suite.train_len = 10 }))

let test_build_failure_is_descriptive () =
  (* With a deviation-free chain the training stream is the pure cycle:
     no rare material exists, so no minimal foreign sequence of size 3
     can be composed (a foreign 3-gram would need a deviant 2-gram in
     the training data).  The build must fail with an error naming the
     cell rather than loop or produce a bogus suite. *)
  let p =
    { (Suite.scaled_params ~train_len:5_000 ~background_len:1_000) with
      Suite.deviation = 0.0;
      as_min = 3;
      as_max = 3;
      dw_max = 4;
    }
  in
  match Suite.build p with
  | _ -> Alcotest.fail "expected Suite.build to fail"
  | exception Injector.No_clean_injection message ->
      Alcotest.(check bool) "mentions the anomaly size" true
        (String.length message > 0
        &&
        let re = "size 3" in
        let rec contains i =
          i + String.length re <= String.length message
          && (String.sub message i (String.length re) = re || contains (i + 1))
        in
        contains 0)

let test_index_depth () =
  let suite = small_suite () in
  Alcotest.(check bool) "index covers windows and anomalies" true
    (Seqdiv_stream.Ngram_index.max_len suite.Suite.index >= 15)

let test_scale_invariance () =
  (* The qualitative structure does not depend on the training length:
     MFS candidates found at 40k match foreignness/minimality at 80k
     scale as well (stability of the n-gram statistics, DESIGN.md §4). *)
  let small = small_suite () in
  let bigger =
    Suite.build (Suite.scaled_params ~train_len:80_000 ~background_len:2_000)
  in
  List.iter
    (fun anomaly_size ->
      let s = Suite.stream small ~anomaly_size ~window:2 in
      match
        Mfs.verify bigger.Suite.index s.Suite.injection.Injector.anomaly
      with
      | Mfs.Ok_minimal_foreign | Mfs.Not_foreign _ -> ()
      | Mfs.Sub_foreign _ | Mfs.Too_short ->
          Alcotest.fail "sub-sequences vanished at larger scale")
    [ 2; 5; 9 ]

let () =
  Alcotest.run "suite"
    [
      ( "suite",
        [
          Alcotest.test_case "paper params" `Quick test_paper_params_shape;
          Alcotest.test_case "112 streams" `Quick test_stream_count;
          Alcotest.test_case "ranges" `Quick test_ranges;
          Alcotest.test_case "lookup" `Quick test_stream_lookup;
          Alcotest.test_case "every stream has an MFS" `Quick
            test_every_stream_has_single_mfs;
          Alcotest.test_case "deterministic" `Quick test_deterministic_in_seed;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_data;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "descriptive build failure" `Quick
            test_build_failure_is_descriptive;
          Alcotest.test_case "index depth" `Quick test_index_depth;
          Alcotest.test_case "scale invariance" `Quick test_scale_invariance;
        ] );
    ]
