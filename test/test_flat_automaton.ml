(* Trie-vs-automaton equivalence: the compiled flat-automaton fast
   path must be behaviourally invisible.  Bit-identical Response items
   from batch scoring, bit-identical Online event streams, identical
   performance maps at jobs 1 and 4, and a flat-binary mmap roundtrip
   that scores exactly like train-then-score. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let compiled_detectors = [ "stide"; "tstide"; "markov" ]

let bits = Int64.bits_of_float

let items_bit_equal a b =
  Array.length a.Response.items = Array.length b.Response.items
  && Array.for_all2
       (fun (x : Response.item) (y : Response.item) ->
         x.Response.start = y.Response.start
         && x.Response.cover = y.Response.cover
         && Int64.equal (bits x.Response.score) (bits y.Response.score))
       a.Response.items b.Response.items

let event_bit_equal a b =
  match (a, b) with
  | Online.Window_scored x, Online.Window_scored y ->
      x.Response.start = y.Response.start
      && x.Response.cover = y.Response.cover
      && Int64.equal (bits x.Response.score) (bits y.Response.score)
  | Online.Incident_opened x, Online.Incident_opened y -> x = y
  | Online.Incident_closed x, Online.Incident_closed y ->
      x.Incident.first_start = y.Incident.first_start
      && x.Incident.last_start = y.Incident.last_start
      && x.Incident.cover_from = y.Incident.cover_from
      && x.Incident.cover_to = y.Incident.cover_to
      && x.Incident.alarms = y.Incident.alarms
      && Int64.equal (bits x.Incident.peak_score) (bits y.Incident.peak_score)
  | _ -> false

let events_bit_equal a b =
  List.length a = List.length b && List.for_all2 event_bit_equal a b

(* {1 Automaton invariant on a hand-built model} *)

let test_state_depth_invariant () =
  (* After feeding the training trace itself, every position from the
     first completed window on must land on a depth-[window] state
     (that window was recorded); an unseen symbol run must not. *)
  let window = 3 in
  let train = [ 0; 1; 2; 3; 4; 0; 1; 2; 3 ] in
  let trained =
    Trained.train (Registry.find_exn "stide") ~window (trace8 train)
  in
  let scorer =
    match Trained.compile trained with
    | Some s -> s
    | None -> Alcotest.fail "stide must compile"
  in
  let auto = Flat_automaton.automaton scorer in
  Alcotest.(check int) "depth" window (Flat_automaton.depth auto);
  Alcotest.(check int) "alphabet" 8 (Flat_automaton.alphabet_size auto);
  let state = ref Flat_automaton.start in
  List.iteri
    (fun i s ->
      state := Flat_automaton.step auto !state s;
      if i >= window - 1 then
        Alcotest.(check int)
          (Printf.sprintf "full depth at %d" i)
          window
          (Flat_automaton.state_depth auto !state))
    train;
  (* Symbol 7 never occurs in training: depth collapses to 0 and stays
     below the window while the unseen suffix persists. *)
  state := Flat_automaton.step auto !state 7;
  Alcotest.(check int) "unseen symbol resets" 0
    (Flat_automaton.state_depth auto !state);
  state := Flat_automaton.step auto !state 0;
  state := Flat_automaton.step auto !state 1;
  Alcotest.(check bool) "recovers along recorded path" true
    (Flat_automaton.state_depth auto !state = 2)

let test_out_of_range_symbol_is_reset () =
  let trained =
    Trained.train (Registry.find_exn "stide") ~window:2 (trace8 [ 0; 1; 0 ])
  in
  let scorer = Option.get (Trained.compile trained) in
  let auto = Flat_automaton.automaton scorer in
  let s = Flat_automaton.step auto Flat_automaton.start 0 in
  Alcotest.(check int) "negative" 0 (Flat_automaton.step auto s (-1));
  Alcotest.(check int) "too large" 0 (Flat_automaton.step auto s 8)

(* {1 qcheck: batch scoring bit-identity, alphabets 2..300 } *)

type case = {
  alphabet_size : int;
  window : int;
  train : int list;
  probe : int list;
}

let case_gen ~max_symbol =
  QCheck.Gen.(
    int_range 2 300 >>= fun alphabet_size ->
    int_range 2 15 >>= fun window ->
    let sym = int_bound (Stdlib.min alphabet_size max_symbol - 1) in
    list_size (int_range (window + 1) 120) sym >>= fun train ->
    list_size (int_range 0 120) sym >>= fun probe ->
    return { alphabet_size; window; train; probe })

let case_print c =
  Printf.sprintf "{k=%d; w=%d; train=[%s]; probe=[%s]}" c.alphabet_size
    c.window
    (String.concat ";" (List.map string_of_int c.train))
    (String.concat ";" (List.map string_of_int c.probe))

let case_arb ~max_symbol =
  QCheck.make ~print:case_print (case_gen ~max_symbol)

let trace_of c symbols = Trace.of_list (Alphabet.make c.alphabet_size) symbols

let batch_bit_identical =
  qcheck ~count:150 "score: trie path = compiled path (bitwise)"
    (case_arb ~max_symbol:max_int)
    (fun c ->
      let training = trace_of c c.train and probe = trace_of c c.probe in
      List.for_all
        (fun name ->
          let trained =
            Trained.train (Registry.find_exn name) ~window:c.window training
          in
          let fast = Trained.compiled trained in
          assert (Trained.scorer fast <> None);
          items_bit_equal (Trained.score trained probe)
            (Trained.score fast probe)
          &&
          (* A sub-range must agree too (exercises warmup from lo > 0). *)
          let hi = Trace.length probe - c.window in
          hi < 1
          || items_bit_equal
               (Trained.score_range trained probe ~lo:1 ~hi)
               (Trained.score_range fast probe ~lo:1 ~hi))
        compiled_detectors)

(* {1 qcheck: Online event-stream bit-identity } *)

let online_bit_identical =
  (* The reference Window_slide path validates symbols against an
     ad-hoc 255-symbol alphabet, so streams stay within 0..254 here;
     alphabets still range over 2..300. *)
  qcheck ~count:120 "online: automaton events = window-rescore events"
    (case_arb ~max_symbol:255)
    (fun c ->
      let training = trace_of c c.train in
      List.for_all
        (fun name ->
          let trained =
            Trained.train (Registry.find_exn name) ~window:c.window training
          in
          let fast = Online.create trained () in
          let slow = Online.create trained ~compile:false () in
          List.for_all
            (fun s ->
              events_bit_equal (Online.feed fast s) (Online.feed slow s))
            c.probe
          && events_bit_equal (Online.flush fast) (Online.flush slow)
          && Online.position fast = Online.position slow
          && List.length (Online.incidents fast)
             = List.length (Online.incidents slow))
        compiled_detectors)

(* {1 Flat-binary roundtrip: mmap-load then score = train-then-score } *)

let with_temp_file f =
  let path = Filename.temp_file "seqdiv" ".flat" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let probe_trace () =
  let suite = tiny_suite () in
  let s = Suite.stream suite ~anomaly_size:4 ~window:5 in
  s.Suite.injection.Injector.trace

let test_flat_roundtrip () =
  let suite = tiny_suite () in
  let probe = probe_trace () in
  List.iter
    (fun name ->
      let trained =
        Trained.train (Registry.find_exn name) ~window:5 suite.Suite.training
      in
      let scorer = Option.get (Trained.compile trained) in
      with_temp_file (fun path ->
          Model_io.save_flat_file path ~detector:name
            ~alarm_threshold:(Trained.alarm_threshold trained)
            scorer;
          let flat = Model_io.load_flat_file path in
          Alcotest.(check string) "detector" name flat.Model_io.flat_detector;
          Alcotest.(check int) "window" 5 flat.Model_io.flat_window;
          Alcotest.(check bool) "threshold bits" true
            (Int64.equal
               (bits (Trained.alarm_threshold trained))
               (bits flat.Model_io.flat_alarm_threshold));
          (* Scoring through the mmap-loaded tables must equal a fresh
             train-then-score, bit for bit. *)
          let loaded =
            Trained.with_scorer trained flat.Model_io.flat_scorer
          in
          Alcotest.(check bool)
            (name ^ ": loaded scorer bit-identical")
            true
            (items_bit_equal (Trained.score trained probe)
               (Trained.score loaded probe));
          (* And a detector-free deployment monitor built straight from
             the file agrees with one around the in-memory model. *)
          let from_file =
            Online.of_scorer flat.Model_io.flat_scorer
              ~threshold:flat.Model_io.flat_alarm_threshold
          in
          let from_model = Online.create trained () in
          Array.iter
            (fun s ->
              Alcotest.(check bool) "online events" true
                (events_bit_equal (Online.feed from_file s)
                   (Online.feed from_model s)))
            (Trace.to_array probe)))
    compiled_detectors

(* {1 Engine: compiled maps identical at jobs 1 and 4 } *)

let test_engine_compiled_maps_equal () =
  let suite = tiny_suite () in
  let detectors = List.map Registry.find_exn compiled_detectors in
  let maps ~jobs ~compile =
    Experiment.all_maps ~engine:(Engine.create ~jobs ~compile ()) suite
      detectors
  in
  let cells m =
    List.rev
      (Performance_map.fold m ~init:[] ~f:(fun acc ~anomaly_size ~window o ->
           (anomaly_size, window, o) :: acc))
  in
  let maps_equal a b =
    Performance_map.detector a = Performance_map.detector b
    && List.for_all2
         (fun (s1, w1, o1) (s2, w2, o2) ->
           s1 = s2 && w1 = w2 && Outcome.equal o1 o2)
         (cells a) (cells b)
  in
  let reference = maps ~jobs:1 ~compile:false in
  List.iter
    (fun (jobs, compile) ->
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (Printf.sprintf "map %s: jobs=%d compile=%b"
               (Performance_map.detector a) jobs compile)
            true (maps_equal a b))
        reference
        (maps ~jobs ~compile))
    [ (1, true); (4, true); (4, false) ]

let test_engine_counts_automata () =
  let suite = tiny_suite () in
  let e = Engine.create ~compile:true () in
  let detectors = List.map Registry.find_exn compiled_detectors in
  ignore (Experiment.all_maps ~engine:e suite detectors);
  let stats = Engine.stats e in
  Alcotest.(check bool) "compiled at least one automaton" true
    (stats.Engine.automata_built > 0);
  Alcotest.(check bool) "automata shared across detectors" true
    (stats.Engine.automata_hits > 0)

let () =
  Alcotest.run "flat_automaton"
    [
      ( "automaton",
        [
          Alcotest.test_case "state-depth invariant" `Quick
            test_state_depth_invariant;
          Alcotest.test_case "out-of-range symbols" `Quick
            test_out_of_range_symbol_is_reset;
        ] );
      ("equivalence", [ batch_bit_identical; online_bit_identical ]);
      ( "deployment",
        [ Alcotest.test_case "flat roundtrip" `Quick test_flat_roundtrip ] );
      ( "engine",
        [
          Alcotest.test_case "maps equal at jobs 1 and 4" `Quick
            test_engine_compiled_maps_equal;
          Alcotest.test_case "automata stats" `Quick
            test_engine_counts_automata;
        ] );
    ]
