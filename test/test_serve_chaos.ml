(* The serve-layer chaos determinism contract, proven at the
   supervisor-model level: a faithful simulation of serve.ml's shard
   lifecycle (crash before apply, restart from the shard journal with
   a consecutive budget that resets on progress, degrade when the
   budget is out) driven by the stateless Fault_plan.Serve band.

   Property 1: under any Transient-only chaos seed whose sticky window
   fits the restart budget, the per-session incident log is
   byte-identical to the chaos-free run — at shard counts 1, 2 and 4.
   Property 2: a shard whose fate exhausts the budget degrades alone;
   every other shard's sessions still match the reference.

   A golden fixture locks one fixed corpus's logs and restart counts
   byte-for-byte; promote with scripts/promote-golden.sh. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let scorer_and_threshold =
  lazy
    (let suite = tiny_suite () in
     let stide =
       Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
     in
     let scorer =
       match Trained.compile stide with
       | Some scorer -> scorer
       | None -> Alcotest.fail "stide must compile"
     in
     (scorer, Trained.alarm_threshold stide))

let incident_of_core (i : Incident.t) =
  {
    Frame.first_start = i.Incident.first_start;
    last_start = i.Incident.last_start;
    cover_from = i.Incident.cover_from;
    cover_to = i.Incident.cover_to;
    alarms = i.Incident.alarms;
    peak_score = i.Incident.peak_score;
  }

(* {1 The serial reference} — as in test_session_table: one Online
   monitor per session, events in stream order. *)

let serial_replay ~scorer ~threshold batches =
  let monitors = Hashtbl.create 16 in
  let log = ref [] in
  let emit session = function
    | Online.Window_scored _ -> ()
    | Online.Incident_opened position ->
        log := Frame.Opened { session; position } :: !log
    | Online.Incident_closed incident ->
        log :=
          Frame.Closed { session; incident = incident_of_core incident }
          :: !log
  in
  List.iter
    (fun events ->
      List.iter
        (fun event ->
          match event with
          | Frame.Data { session; symbols } ->
              let monitor =
                match Hashtbl.find_opt monitors session with
                | Some m -> m
                | None ->
                    let m = Online.of_scorer scorer ~threshold in
                    Hashtbl.replace monitors session m;
                    m
              in
              Array.iter
                (fun s -> List.iter (emit session) (Online.feed monitor s))
                symbols
          | Frame.End_of_session { session } -> (
              match Hashtbl.find_opt monitors session with
              | Some monitor ->
                  List.iter (emit session) (Online.flush monitor);
                  Hashtbl.remove monitors session
              | None -> ()))
        events)
    batches;
  List.rev !log

let by_session incident_events =
  let t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let session =
        match ev with
        | Frame.Opened { session; _ } | Frame.Closed { session; _ } -> session
      in
      let line = Frame.render_incident_event ev in
      Hashtbl.replace t session
        (line :: Option.value ~default:[] (Hashtbl.find_opt t session)))
    incident_events;
  Hashtbl.fold (fun s lines acc -> (s, List.rev lines) :: acc) t []
  |> List.sort compare

let route_events ~shards events =
  let buckets = Array.make shards [] in
  List.iter
    (fun event ->
      let session =
        match event with
        | Frame.Data { session; _ } | Frame.End_of_session { session } ->
            session
      in
      let shard = Frame.shard_of_session ~shards session in
      buckets.(shard) <- event :: buckets.(shard))
    events;
  Array.map List.rev buckets

(* {1 The supervisor model} *)

type sim_shard = {
  ss_shard : int;
  mutable ss_table : Session_table.t;
  mutable ss_consecutive : int;
  mutable ss_restarts : int;
  mutable ss_degraded : bool;
}

type sim_outcome = {
  so_log : Frame.incident_event list;  (* acked incidents, emission order *)
  so_failed : (int * int) list;  (* (batch_id, shard) answered Failed *)
  so_restarts : int;
  so_degraded : int list;  (* ascending *)
}

let with_journal_dir f =
  let dir = Filename.temp_file "seqdiv-serve-chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Exactly the supervisor's semantics: the chaos trip fires BEFORE the
   apply (the journal holds only committed batches at the crash), a
   restart reopens the journal with resume and re-runs the job at
   attempt+1, the consecutive budget resets whenever a job is answered,
   and an exhausted budget degrades the shard — its stranded and future
   sub-batches answered Failed, nothing else touched. *)
let chaos_replay ?(tag = "t") ~scorer ~threshold ~shards ~plan ~max_restarts
    ~dir batches =
  let context shard = Printf.sprintf "serve chaos test shard=%d" shard in
  let journal_path shard =
    Filename.concat dir
      (Printf.sprintf "%s-s%d-shard-%d.journal" tag shards shard)
  in
  let open_table ~resume shard =
    let journal =
      Shard_journal.start ~resume ~context:(context shard)
        (journal_path shard)
    in
    Session_table.create ~scorer ~threshold ~journal ~shard ()
  in
  let sims =
    Array.init shards (fun shard ->
        {
          ss_shard = shard;
          ss_table = open_table ~resume:false shard;
          ss_consecutive = 0;
          ss_restarts = 0;
          ss_degraded = false;
        })
  in
  let log = ref [] and failed = ref [] in
  List.iteri
    (fun batch_id events ->
      let buckets = route_events ~shards events in
      Array.iteri
        (fun shard sub ->
          match sub with
          | [] -> ()
          | sub ->
              let sim = sims.(shard) in
              if sim.ss_degraded then failed := (batch_id, shard) :: !failed
              else
                let key = Fault_plan.Serve.job_key ~batch_id ~shard in
                let rec run attempt =
                  match Fault_plan.Serve.trip plan ~key ~attempt with
                  | () ->
                      let evs =
                        Session_table.apply sim.ss_table ~batch_id sub
                      in
                      sim.ss_consecutive <- 0;
                      log := List.rev_append evs !log
                  | exception Fault.Injected (severity, _) ->
                      if
                        severity = Fault.Transient
                        && sim.ss_consecutive < max_restarts
                      then begin
                        sim.ss_consecutive <- sim.ss_consecutive + 1;
                        sim.ss_restarts <- sim.ss_restarts + 1;
                        sim.ss_table <- open_table ~resume:true shard;
                        run (attempt + 1)
                      end
                      else begin
                        sim.ss_degraded <- true;
                        failed := (batch_id, shard) :: !failed
                      end
                in
                run 0)
        buckets)
    batches;
  {
    so_log = List.rev !log;
    so_failed = List.rev !failed;
    so_restarts =
      Array.fold_left (fun a s -> a + s.ss_restarts) 0 sims;
    so_degraded =
      Array.to_list sims
      |> List.filter_map (fun s ->
             if s.ss_degraded then Some s.ss_shard else None);
  }

(* {1 Generators} — the test_session_table shapes. *)

let gen_event =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map2
            (fun session symbols ->
              Frame.Data { session; symbols = Array.of_list symbols })
            (int_bound 5)
            (list_size (1 -- 12) (int_bound 7)) );
        (1, map (fun session -> Frame.End_of_session { session }) (int_bound 5));
      ])

let gen_batches =
  QCheck.Gen.(list_size (1 -- 12) (list_size (1 -- 8) gen_event))

let arbitrary_batches =
  QCheck.make
    ~print:(fun batches ->
      Printf.sprintf "%d batches / %d events" (List.length batches)
        (List.fold_left (fun a b -> a + List.length b) 0 batches))
    gen_batches

(* {1 Properties} *)

let prop_chaos_determinism =
  (* Sticky crashes within the restart budget: every sub-batch is
     eventually acked and the per-session log never moves — any seed,
     any shard count. *)
  qcheck ~count:30 "transient chaos log = chaos-free log (shards 1/2/4)"
    arbitrary_batches
    (fun batches ->
      let scorer, threshold = Lazy.force scorer_and_threshold in
      let plan =
        Fault_plan.Serve.of_seed ~crash_rate:0.35 ~sticky:2 ~seed:42 ()
      in
      let reference = by_session (serial_replay ~scorer ~threshold batches) in
      with_journal_dir (fun dir ->
          List.for_all
            (fun shards ->
              let o =
                chaos_replay ~scorer ~threshold ~shards ~plan ~max_restarts:3
                  ~dir batches
              in
              o.so_failed = [] && o.so_degraded = []
              && by_session o.so_log = reference)
            [ 1; 2; 4 ]))

let prop_degrade_isolation =
  (* An unbounded sticky window exhausts the budget: the first
     crash-fated sub-batch degrades its shard.  Every degraded shard
     answered Failed for that sub, and the sessions of the surviving
     shards still match the reference exactly. *)
  qcheck ~count:30 "exhausted budget degrades only its shard"
    arbitrary_batches
    (fun batches ->
      let scorer, threshold = Lazy.force scorer_and_threshold in
      let plan =
        Fault_plan.Serve.of_seed ~crash_rate:0.35 ~sticky:1_000_000 ~seed:7 ()
      in
      let shards = 2 in
      let reference = by_session (serial_replay ~scorer ~threshold batches) in
      with_journal_dir (fun dir ->
          let o =
            chaos_replay ~scorer ~threshold ~shards ~plan ~max_restarts:2 ~dir
              batches
          in
          let degraded shard = List.mem shard o.so_degraded in
          List.for_all (fun (_, shard) -> degraded shard) o.so_failed
          && (o.so_failed = []) = (o.so_degraded = [])
          && List.filter
               (fun (session, _) ->
                 not (degraded (Frame.shard_of_session ~shards session)))
               (by_session o.so_log)
             = List.filter
                 (fun (session, _) ->
                   not (degraded (Frame.shard_of_session ~shards session)))
                 reference))

(* {1 Golden fixture} — one fixed corpus, logs and restart counts
   locked byte-for-byte at shards 1, 2 and 4. *)

let golden_dir =
  match Sys.getenv_opt "SEQDIV_GOLDEN_DIR" with
  | Some d -> d
  | None -> "golden"

let fixture = Filename.concat golden_dir "serve_chaos.txt"

(* Six sessions, ten batches, arithmetic symbols: fully deterministic
   without a generator in the loop. *)
let golden_batches =
  List.init 10 (fun i ->
      let data =
        List.init 6 (fun s ->
            Frame.Data
              {
                session = s;
                symbols =
                  Array.init 7 (fun k -> ((i * 5) + (s * 3) + (k * 2)) mod 8);
              })
      in
      if i = 9 then
        data @ List.init 6 (fun s -> Frame.End_of_session { session = s })
      else data)

let render_sessions buf sessions =
  List.iter
    (fun (session, lines) ->
      Printf.bprintf buf "session %d:\n" session;
      List.iter (fun l -> Printf.bprintf buf "  %s\n" l) lines)
    sessions

let gen_fixture () =
  let scorer, threshold = Lazy.force scorer_and_threshold in
  let buf = Buffer.create 4096 in
  let reference =
    by_session (serial_replay ~scorer ~threshold golden_batches)
  in
  Buffer.add_string buf "== reference (chaos-free serial replay) ==\n";
  render_sessions buf reference;
  with_journal_dir (fun dir ->
      let plan =
        Fault_plan.Serve.of_seed ~crash_rate:0.4 ~sticky:2 ~seed:11 ()
      in
      List.iter
        (fun shards ->
          let o =
            chaos_replay ~scorer ~threshold ~shards ~plan ~max_restarts:3 ~dir
              golden_batches
          in
          Printf.bprintf buf
            "== chaos shards=%d crash=0.40 sticky=2 max_restarts=3 ==\n"
            shards;
          Printf.bprintf buf "restarts=%d degraded=%d failed_subs=%d log=%s\n"
            o.so_restarts
            (List.length o.so_degraded)
            (List.length o.so_failed)
            (if by_session o.so_log = reference then "identical"
             else "DIVERGED");
          if by_session o.so_log <> reference then
            render_sessions buf (by_session o.so_log))
        [ 1; 2; 4 ];
      (* seed 3 at rate 0.15 fates shard 0's batches 0 and 6 to crash
         and leaves every shard-1 sub clean: shard 0 degrades alone and
         the fixture shows shard 1's sessions surviving untouched. *)
      let plan_fatal =
        Fault_plan.Serve.of_seed ~crash_rate:0.15 ~sticky:1_000_000 ~seed:3 ()
      in
      let o =
        chaos_replay ~tag:"fatal" ~scorer ~threshold ~shards:2 ~plan:plan_fatal
          ~max_restarts:1 ~dir golden_batches
      in
      Printf.bprintf buf
        "== exhausted budget shards=2 crash=0.15 sticky=inf max_restarts=1 ==\n";
      Printf.bprintf buf "degraded=[%s] failed_subs=%d\n"
        (String.concat ";" (List.map string_of_int o.so_degraded))
        (List.length o.so_failed);
      Buffer.add_string buf "surviving sessions:\n";
      render_sessions buf
        (List.filter
           (fun (session, _) ->
             not
               (List.mem (Frame.shard_of_session ~shards:2 session)
                  o.so_degraded))
           (by_session o.so_log)));
  Buffer.contents buf

let promote () =
  Out_channel.with_open_bin fixture (fun oc ->
      Out_channel.output_string oc (gen_fixture ()));
  Printf.printf "promoted %s\n" fixture

let check_fixture () =
  if not (Sys.file_exists fixture) then
    Alcotest.failf "missing fixture %s — run scripts/promote-golden.sh" fixture;
  let expected = In_channel.with_open_bin fixture In_channel.input_all in
  Alcotest.(check string) "serve chaos fixture matches byte-for-byte" expected
    (gen_fixture ())

let test_chaos_fires () =
  (* The golden corpus must actually exercise the machinery: restarts
     strictly positive under the transient plan, at every shard count. *)
  let scorer, threshold = Lazy.force scorer_and_threshold in
  let plan = Fault_plan.Serve.of_seed ~crash_rate:0.4 ~sticky:2 ~seed:11 () in
  with_journal_dir (fun dir ->
      List.iter
        (fun shards ->
          let o =
            chaos_replay ~scorer ~threshold ~shards ~plan ~max_restarts:3 ~dir
              golden_batches
          in
          Alcotest.(check bool)
            (Printf.sprintf "restarts fired at shards=%d" shards)
            true (o.so_restarts > 0))
        [ 1; 2; 4 ])

let () =
  match Sys.getenv_opt "SEQDIV_GOLDEN_PROMOTE" with
  | Some _ -> promote ()
  | None ->
      Alcotest.run "serve_chaos"
        [
          ( "serve_chaos",
            [
              Alcotest.test_case "chaos fires" `Quick test_chaos_fires;
              Alcotest.test_case "golden" `Slow check_fixture;
              prop_chaos_determinism;
              prop_degrade_isolation;
            ] );
        ]
