open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let stide_monitor ?threshold () =
  let suite = tiny_suite () in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
  in
  (suite, Online.create stide ?threshold ())

let feed_all monitor symbols =
  List.concat_map (fun s -> Online.feed monitor s) symbols

let windows_scored events =
  List.filter_map
    (function Online.Window_scored i -> Some i | _ -> None)
    events

let test_warmup_emits_nothing () =
  let _, monitor = stide_monitor () in
  Alcotest.(check int) "first window-1 symbols silent" 0
    (List.length (feed_all monitor [ 0; 1; 2 ]));
  Alcotest.(check int) "position tracked" 3 (Online.position monitor)

let test_every_symbol_after_warmup_scores () =
  let _, monitor = stide_monitor () in
  let events = feed_all monitor [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "three windows" 3 (List.length (windows_scored events))

let test_matches_batch_scoring () =
  let suite, monitor = stide_monitor () in
  let test = Suite.stream suite ~anomaly_size:3 ~window:4 in
  let trace = test.Suite.injection.Injector.trace in
  let symbols = Array.to_list (Trace.to_array trace) in
  let events = feed_all monitor symbols in
  let online_scores =
    windows_scored events |> List.map (fun i -> i.Response.score)
  in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
  in
  let batch = Trained.score stide trace in
  let batch_scores =
    Array.to_list (Array.map (fun i -> i.Response.score) batch.Response.items)
  in
  Alcotest.(check int) "same count" (List.length batch_scores)
    (List.length online_scores);
  List.iter2
    (fun a b -> Alcotest.(check (float 0.0)) "same score" a b)
    batch_scores online_scores

let test_incident_lifecycle () =
  let suite, monitor = stide_monitor () in
  let test = Suite.stream suite ~anomaly_size:3 ~window:4 in
  let trace = test.Suite.injection.Injector.trace in
  let events = feed_all monitor (Array.to_list (Trace.to_array trace)) in
  let opened =
    List.filter (function Online.Incident_opened _ -> true | _ -> false) events
  in
  let closed =
    List.filter_map
      (function Online.Incident_closed i -> Some i | _ -> None)
      events
  in
  Alcotest.(check int) "one incident opened" 1 (List.length opened);
  Alcotest.(check int) "one incident closed" 1 (List.length closed);
  List.iter
    (fun incident ->
      Alcotest.(check bool) "incident covers the anomaly" true
        (Incident.matches_ground_truth incident
           ~position:test.Suite.injection.Injector.position ~size:3))
    closed;
  Alcotest.(check int) "recorded" 1 (List.length (Online.incidents monitor))

let test_flush_closes_open_incident () =
  let _, monitor = stide_monitor () in
  (* Feed a foreign window at the very end of the stream: the incident
     stays open until flush. *)
  let events = feed_all monitor [ 0; 1; 2; 3; 0; 0; 0; 0 ] in
  let closed_during =
    List.filter (function Online.Incident_closed _ -> true | _ -> false) events
  in
  (* The all-zeros windows are foreign, so an incident opened; it only
     closes on flush. *)
  Alcotest.(check int) "not closed during stream" 0 (List.length closed_during);
  let flushed = Online.flush monitor in
  Alcotest.(check int) "flush closes" 1 (List.length flushed)

let test_clean_stream_no_incidents () =
  let suite, monitor = stide_monitor () in
  let bg = Generator.background suite.Suite.alphabet ~len:200 ~phase:0 in
  let events = feed_all monitor (Array.to_list (Trace.to_array bg)) in
  Alcotest.(check int) "no incidents" 0
    (List.length
       (List.filter
          (function Online.Incident_opened _ -> true | _ -> false)
          events));
  Alcotest.(check int) "flush finds nothing" 0 (List.length (Online.flush monitor))

let test_threshold_override () =
  let suite = tiny_suite () in
  let lnb =
    Trained.train (Registry.find_exn "lnb") ~window:4 suite.Suite.training
  in
  (* L&B never reaches 1; with a lowered threshold the monitor fires. *)
  let strict = Online.create lnb () in
  let lenient = Online.create lnb ~threshold:0.2 () in
  let symbols = [ 0; 1; 2; 3; 0; 0; 0; 0; 4; 5; 6; 7 ] in
  let fired monitor =
    feed_all monitor symbols
    |> List.exists (function Online.Incident_opened _ -> true | _ -> false)
  in
  Alcotest.(check bool) "strict silent" false (fired strict);
  Alcotest.(check bool) "lenient fires" true (fired lenient)

(* {1 of_scorer edge cases (the serve layer's construction path)} *)

let compiled_stide () =
  let suite = tiny_suite () in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
  in
  let scorer =
    match Trained.compile stide with
    | Some scorer -> scorer
    | None -> Alcotest.fail "stide must compile"
  in
  (scorer, Trained.alarm_threshold stide)

let test_of_scorer_short_stream () =
  (* Fewer symbols than one window: no window ever completes, so no
     events — and flush finds nothing to close. *)
  let scorer, threshold = compiled_stide () in
  let monitor = Online.of_scorer scorer ~threshold in
  let events = feed_all monitor [ 0; 1; 2 ] in
  Alcotest.(check int) "silent below one window" 0 (List.length events);
  Alcotest.(check int) "flush finds nothing" 0
    (List.length (Online.flush monitor));
  Alcotest.(check int) "position still tracked" 3 (Online.position monitor)

let test_of_scorer_stream_ends_mid_incident () =
  (* A foreign run at the very end of the stream: the incident is still
     open when input stops.  Only flush makes it observable; the closed
     incident must cover through the final window. *)
  let scorer, threshold = compiled_stide () in
  let monitor = Online.of_scorer scorer ~threshold in
  let events = feed_all monitor [ 0; 1; 2; 3; 0; 0; 0; 0 ] in
  Alcotest.(check bool) "incident opened" true
    (List.exists
       (function Online.Incident_opened _ -> true | _ -> false)
       events);
  Alcotest.(check bool) "not closed while open-ended" false
    (List.exists
       (function Online.Incident_closed _ -> true | _ -> false)
       events);
  Alcotest.(check int) "invisible before flush" 0
    (List.length (Online.incidents monitor));
  (match Online.flush monitor with
  | [ Online.Incident_closed incident ] ->
      Alcotest.(check int) "covers the last window" 7
        incident.Incident.cover_to
  | _ -> Alcotest.fail "flush must close exactly the open incident");
  Alcotest.(check int) "recorded after flush" 1
    (List.length (Online.incidents monitor));
  Alcotest.(check int) "second flush is a no-op" 0
    (List.length (Online.flush monitor))

let test_of_scorer_threshold_exactly_at_score () =
  (* The alarm predicate is [score >= threshold]: a window scoring
     exactly the threshold alarms; just above it stays silent. *)
  let scorer, _ = compiled_stide () in
  let symbols = [ 0; 1; 2; 3; 0; 0; 0; 0 ] in
  let foreign_score =
    let probe = Online.of_scorer scorer ~threshold:Float.max_float in
    feed_all probe symbols
    |> List.filter_map (function
         | Online.Window_scored i -> Some i.Response.score
         | _ -> None)
    |> List.fold_left Float.max neg_infinity
  in
  Alcotest.(check bool) "stream has a scoring window" true
    (foreign_score > 0.0);
  let fired threshold =
    let monitor = Online.of_scorer scorer ~threshold in
    feed_all monitor symbols
    |> List.exists (function Online.Incident_opened _ -> true | _ -> false)
  in
  Alcotest.(check bool) "score = threshold alarms" true (fired foreign_score);
  Alcotest.(check bool) "threshold just above is silent" false
    (fired (foreign_score +. epsilon_float *. foreign_score *. 2.0 +. Float.min_float))

let test_snapshot_restore_roundtrip () =
  (* Cut a stream anywhere; restoring the snapshot must continue with
     the same events as the uninterrupted monitor. *)
  let scorer, threshold = compiled_stide () in
  let symbols = [ 0; 1; 2; 3; 0; 0; 0; 0; 4; 5; 6; 7; 0; 1; 2; 3 ] in
  let straight = Online.of_scorer scorer ~threshold in
  let all_events = feed_all straight symbols in
  let cut = 7 in
  let first = Online.of_scorer scorer ~threshold in
  let head_events = feed_all first (List.filteri (fun i _ -> i < cut) symbols) in
  let snap =
    match Online.snapshot first with
    | Some snap -> snap
    | None -> Alcotest.fail "automaton monitors must snapshot"
  in
  let second = Online.restore scorer ~threshold snap in
  Alcotest.(check int) "position restored" (Online.position first)
    (Online.position second);
  let tail_events =
    feed_all second (List.filteri (fun i _ -> i >= cut) symbols)
  in
  Alcotest.(check int) "same event count" (List.length all_events)
    (List.length (head_events @ tail_events));
  Alcotest.(check int) "same final incidents"
    (List.length (Online.flush straight))
    (List.length (Online.flush second))

let test_restore_rejects_garbage () =
  let scorer, threshold = compiled_stide () in
  let bad =
    {
      Online.snap_consumed = 4;
      snap_state = max_int;
      snap_open = None;
      snap_adaptive = None;
    }
  in
  match Online.restore scorer ~threshold bad with
  | _ -> Alcotest.fail "out-of-range state accepted"
  | exception Invalid_argument _ -> ()

(* {1 Adaptive thresholding through the monitor} *)

let adaptive_cfg ~initial =
  (* Small warmup/refresh so the controller moves within a short test
     stream. *)
  Adaptive_threshold.config ~budget:0.1 ~warmup:4 ~refresh:2 ~initial ()

let mixed_symbols =
  (* Background cycles with two foreign bursts: the score stream holds
     both clusters, so the sketch fills and the threshold moves. *)
  let rec repeat n xs = if n = 0 then [] else xs @ repeat (n - 1) xs in
  repeat 3 [ 0; 1; 2; 3 ]
  @ [ 0; 0; 0; 0 ]
  @ repeat 4 [ 0; 1; 2; 3 ]
  @ [ 5; 5; 5; 5 ]
  @ repeat 3 [ 0; 1; 2; 3 ]

let test_adaptive_snapshot_restore () =
  (* Kill/resume with adaptive thresholding: the snapshot carries the
     controller (sketch included), so the restored monitor makes the
     same decisions AND lands in bit-identical controller state. *)
  let scorer, threshold = compiled_stide () in
  let cfg = adaptive_cfg ~initial:0.5 in
  let straight = Online.of_scorer ~adaptive:cfg scorer ~threshold in
  let all_events = feed_all straight mixed_symbols in
  Alcotest.(check bool) "threshold moved during the stream" true
    (Online.current_threshold straight <> 0.5);
  let cut = 19 in
  let first = Online.of_scorer ~adaptive:cfg scorer ~threshold in
  let head =
    feed_all first (List.filteri (fun i _ -> i < cut) mixed_symbols)
  in
  let snap =
    match Online.snapshot first with
    | Some snap -> snap
    | None -> Alcotest.fail "automaton monitors must snapshot"
  in
  (match snap.Online.snap_adaptive with
  | Some token ->
      Alcotest.(check bool) "controller token present" true
        (String.length token > 0)
  | None -> Alcotest.fail "adaptive snapshot must carry the controller");
  let second = Online.restore ~adaptive:cfg scorer ~threshold snap in
  let tail =
    feed_all second (List.filteri (fun i _ -> i >= cut) mixed_symbols)
  in
  Alcotest.(check int) "same event count" (List.length all_events)
    (List.length (head @ tail));
  let scores events =
    windows_scored events |> List.map (fun i -> i.Response.score)
  in
  List.iter2
    (fun a b -> Alcotest.(check (float 0.0)) "same score" a b)
    (scores all_events)
    (scores (head @ tail));
  Alcotest.(check int) "same windows judged" (Online.windows_scored straight)
    (Online.windows_scored second);
  Alcotest.(check int) "same alarm windows" (Online.alarm_windows straight)
    (Online.alarm_windows second);
  Alcotest.(check (float 0.0)) "same final threshold"
    (Online.current_threshold straight)
    (Online.current_threshold second);
  match (Online.snapshot straight, Online.snapshot second) with
  | Some a, Some b ->
      Alcotest.(check (option string)) "bit-identical controller token"
        a.Online.snap_adaptive b.Online.snap_adaptive;
      Alcotest.(check int) "same automaton state" a.Online.snap_state
        b.Online.snap_state
  | _ -> Alcotest.fail "both monitors must snapshot"

let test_adaptive_strictly_above () =
  (* The adaptive rule is strict: a window scoring exactly the
     controller's threshold stays silent (the quantile value can be an
     atom of the score distribution), where the static at-or-above
     rule alarms.  A huge warmup pins the controller at [initial] for
     the whole stream, so only the comparison rule differs. *)
  let scorer, _ = compiled_stide () in
  let symbols = [ 0; 1; 2; 3; 0; 0; 0; 0 ] in
  let top =
    let probe = Online.of_scorer scorer ~threshold:Float.max_float in
    feed_all probe symbols
    |> List.filter_map (function
         | Online.Window_scored i -> Some i.Response.score
         | _ -> None)
    |> List.fold_left Float.max neg_infinity
  in
  Alcotest.(check bool) "stream has a scoring window" true (top > 0.0);
  let fired ?adaptive threshold =
    let monitor = Online.of_scorer ?adaptive scorer ~threshold in
    feed_all monitor symbols
    |> List.exists (function Online.Incident_opened _ -> true | _ -> false)
  in
  let pinned initial =
    Adaptive_threshold.config ~budget:0.1 ~warmup:1_000_000 ~initial ()
  in
  Alcotest.(check bool) "static: score = threshold alarms" true (fired top);
  Alcotest.(check bool) "adaptive: score = threshold is silent" false
    (fired ~adaptive:(pinned top) top);
  Alcotest.(check bool) "adaptive: threshold just below fires" true
    (fired ~adaptive:(pinned (top *. 0.999999)) (top *. 0.999999))

let test_threshold_moves_mid_incident () =
  (* Exactly-at-threshold semantics while the threshold moves
     mid-incident: a long foreign run opens an incident at the learned
     low threshold, then a refresh absorbs the foreign scores
     themselves and re-prices the threshold up to the 1.0 score atom —
     at which point the strict [>] rule stops alarming even though the
     foreign run continues, and the incident closes {e before} the
     stream ends.  (The static at-or-above path would hold the
     incident open to flush.) *)
  let scorer, _ = compiled_stide () in
  let cfg =
    Adaptive_threshold.config ~budget:0.3 ~warmup:4 ~refresh:2 ~initial:0.5 ()
  in
  let monitor = Online.of_scorer ~adaptive:cfg scorer ~threshold:0.5 in
  let symbols =
    (* Clean cycle to get past warmup at threshold 0, then a foreign
       run long enough to straddle several refreshes. *)
    List.init 11 (fun i -> i mod 8) @ List.init 12 (fun _ -> 0)
  in
  let events = feed_all monitor symbols in
  let opened =
    List.filter (function Online.Incident_opened _ -> true | _ -> false) events
  in
  let closed_during =
    List.filter (function Online.Incident_closed _ -> true | _ -> false) events
  in
  Alcotest.(check int) "incident opened" 1 (List.length opened);
  Alcotest.(check int) "incident closed before the stream ended" 1
    (List.length closed_during);
  Alcotest.(check int) "nothing left open at flush" 0
    (List.length (Online.flush monitor));
  (* The close was the re-pricing, not the end of foreign content: the
     threshold ended up at the foreign-score atom. *)
  Alcotest.(check (float 0.0)) "threshold moved to the score atom" 1.0
    (Online.current_threshold monitor)

let test_restore_adaptive_mismatch () =
  (* Restore refuses half-configured adaptive state: the snapshot and
     the supplied configuration must agree about whether a controller
     exists, and the token must parse under that exact configuration. *)
  let scorer, threshold = compiled_stide () in
  let cfg = adaptive_cfg ~initial:0.5 in
  let snap_of monitor =
    ignore (feed_all monitor [ 0; 1; 2; 3; 4 ]);
    match Online.snapshot monitor with
    | Some snap -> snap
    | None -> Alcotest.fail "automaton monitors must snapshot"
  in
  let static_snap = snap_of (Online.of_scorer scorer ~threshold) in
  (match Online.restore ~adaptive:cfg scorer ~threshold static_snap with
  | _ -> Alcotest.fail "static snapshot restored as adaptive"
  | exception Invalid_argument _ -> ());
  let adaptive_snap =
    snap_of (Online.of_scorer ~adaptive:cfg scorer ~threshold)
  in
  (match Online.restore scorer ~threshold adaptive_snap with
  | _ -> Alcotest.fail "adaptive snapshot restored as static"
  | exception Invalid_argument _ -> ());
  (* A different budget means a different sketch target: the token must
     not parse under the foreign configuration. *)
  let other = Adaptive_threshold.config ~budget:0.2 ~initial:0.5 () in
  match Online.restore ~adaptive:other scorer ~threshold adaptive_snap with
  | _ -> Alcotest.fail "foreign-config token accepted"
  | exception Invalid_argument _ -> ()

let prop_online_incidents_match_batch =
  (* The streaming monitor and the batch coalescer must report the same
     incidents for the same trace. *)
  qcheck ~count:25 "online incidents = batch incidents"
    QCheck.(list_of_size Gen.(10 -- 120) (int_bound 7))
    (fun symbols ->
      let suite = tiny_suite () in
      let stide =
        Trained.train (Registry.find_exn "stide") ~window:4
          suite.Suite.training
      in
      let trace = trace8 symbols in
      let batch =
        Incident.of_response (Trained.score stide trace) ~threshold:1.0
      in
      let monitor = Online.create stide () in
      List.iter (fun s -> ignore (Online.feed monitor s)) symbols;
      ignore (Online.flush monitor);
      let online = Online.incidents monitor in
      List.length batch = List.length online
      && List.for_all2
           (fun (a : Incident.t) (b : Incident.t) ->
             a.Incident.first_start = b.Incident.first_start
             && a.Incident.last_start = b.Incident.last_start
             && a.Incident.cover_from = b.Incident.cover_from
             && a.Incident.cover_to = b.Incident.cover_to
             && a.Incident.alarms = b.Incident.alarms)
           batch online)

let () =
  Alcotest.run "online"
    [
      ( "online",
        [
          Alcotest.test_case "warmup" `Quick test_warmup_emits_nothing;
          Alcotest.test_case "scores each window" `Quick
            test_every_symbol_after_warmup_scores;
          Alcotest.test_case "matches batch" `Quick test_matches_batch_scoring;
          Alcotest.test_case "incident lifecycle" `Quick test_incident_lifecycle;
          Alcotest.test_case "flush" `Quick test_flush_closes_open_incident;
          Alcotest.test_case "clean stream" `Quick test_clean_stream_no_incidents;
          Alcotest.test_case "threshold override" `Quick test_threshold_override;
          Alcotest.test_case "of_scorer: short stream" `Quick
            test_of_scorer_short_stream;
          Alcotest.test_case "of_scorer: ends mid-incident" `Quick
            test_of_scorer_stream_ends_mid_incident;
          Alcotest.test_case "of_scorer: threshold boundary" `Quick
            test_of_scorer_threshold_exactly_at_score;
          Alcotest.test_case "snapshot/restore" `Quick
            test_snapshot_restore_roundtrip;
          Alcotest.test_case "restore validation" `Quick
            test_restore_rejects_garbage;
          Alcotest.test_case "adaptive: snapshot/restore" `Quick
            test_adaptive_snapshot_restore;
          Alcotest.test_case "adaptive: strictly above" `Quick
            test_adaptive_strictly_above;
          Alcotest.test_case "adaptive: re-prices mid-incident" `Quick
            test_threshold_moves_mid_incident;
          Alcotest.test_case "adaptive: restore mismatch" `Quick
            test_restore_adaptive_mismatch;
          prop_online_incidents_match_batch;
        ] );
    ]
