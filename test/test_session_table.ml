(* The serve determinism contract, proven at the Session_table level:
   for ANY interleaved batch stream, the per-session incident log is
   identical to a serial Online replay of that session's symbols —
   whatever the shard count, and across a simulated kill/resume with
   resent batches.  This is the property that makes `seqdiv serve`'s
   output reproducible and its crash recovery byte-exact. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let scorer_and_threshold =
  lazy
    (let suite = tiny_suite () in
     let stide =
       Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
     in
     let scorer =
       match Trained.compile stide with
       | Some scorer -> scorer
       | None -> Alcotest.fail "stide must compile"
     in
     (scorer, Trained.alarm_threshold stide))

let incident_of_core (i : Incident.t) =
  {
    Frame.first_start = i.Incident.first_start;
    last_start = i.Incident.last_start;
    cover_from = i.Incident.cover_from;
    cover_to = i.Incident.cover_to;
    alarms = i.Incident.alarms;
    peak_score = i.Incident.peak_score;
  }

(* {1 The serial reference}

   One Online monitor per session, events applied in stream order on
   the calling domain — the semantics Session_table must reproduce. *)

let serial_replay ?adaptive ~scorer ~threshold batches =
  let monitors = Hashtbl.create 16 in
  let log = ref [] in
  let emit session = function
    | Online.Window_scored _ -> ()
    | Online.Incident_opened position ->
        log := Frame.Opened { session; position } :: !log
    | Online.Incident_closed incident ->
        log :=
          Frame.Closed { session; incident = incident_of_core incident }
          :: !log
  in
  List.iter
    (fun events ->
      List.iter
        (fun event ->
          match event with
          | Frame.Data { session; symbols } ->
              let monitor =
                match Hashtbl.find_opt monitors session with
                | Some m -> m
                | None ->
                    let m = Online.of_scorer ?adaptive scorer ~threshold in
                    Hashtbl.replace monitors session m;
                    m
              in
              Array.iter
                (fun s -> List.iter (emit session) (Online.feed monitor s))
                symbols
          | Frame.End_of_session { session } -> (
              match Hashtbl.find_opt monitors session with
              | Some monitor ->
                  List.iter (emit session) (Online.flush monitor);
                  Hashtbl.remove monitors session
              | None -> ()))
        events)
    batches;
  List.rev !log

(* Per-session rendered log: the cross-shard comparable form (global
   emission order is sharding-dependent; per-session order is not). *)
let by_session incident_events =
  let t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let session =
        match ev with
        | Frame.Opened { session; _ } | Frame.Closed { session; _ } -> session
      in
      let line = Frame.render_incident_event ev in
      Hashtbl.replace t session
        (line :: Option.value ~default:[] (Hashtbl.find_opt t session)))
    incident_events;
  Hashtbl.fold (fun s lines acc -> (s, List.rev lines) :: acc) t []
  |> List.sort compare

let route_events ~shards events =
  let buckets = Array.make shards [] in
  List.iter
    (fun event ->
      let session =
        match event with
        | Frame.Data { session; _ } | Frame.End_of_session { session } ->
            session
      in
      let shard = Frame.shard_of_session ~shards session in
      buckets.(shard) <- event :: buckets.(shard))
    events;
  Array.map List.rev buckets

let sharded_replay ?adaptive ~scorer ~threshold ~shards batches =
  let tables =
    Array.init shards (fun shard ->
        Session_table.create ~scorer ~threshold ?adaptive ~shard ())
  in
  List.concat
    (List.mapi
       (fun batch_id events ->
         let buckets = route_events ~shards events in
         List.concat
           (List.init shards (fun shard ->
                match buckets.(shard) with
                | [] -> []
                | sub -> Session_table.apply tables.(shard) ~batch_id sub)))
       batches)

(* {1 Generators} *)

let gen_event =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map2
            (fun session symbols ->
              Frame.Data { session; symbols = Array.of_list symbols })
            (int_bound 5)
            (list_size (1 -- 12) (int_bound 7)) );
        (1, map (fun session -> Frame.End_of_session { session }) (int_bound 5));
      ])

let gen_batches =
  QCheck.Gen.(list_size (1 -- 12) (list_size (1 -- 8) gen_event))

let arbitrary_batches =
  QCheck.make
    ~print:(fun batches ->
      Printf.sprintf "%d batches / %d events" (List.length batches)
        (List.fold_left (fun a b -> a + List.length b) 0 batches))
    gen_batches

(* {1 Properties}

   Every determinism property is proven twice: with the static
   threshold and with an adaptive controller per session.  The
   adaptive configuration is deliberately twitchy (tiny warmup and
   refresh) so thresholds move within the short fuzzed streams — the
   regime where a controller that was not byte-exact in the journal,
   or not purely score-driven, would split the logs. *)

let twitchy_adaptive =
  Adaptive_threshold.config ~budget:0.25 ~warmup:4 ~refresh:2 ~initial:0.5 ()

let shard_invariant_prop ?adaptive name =
  qcheck ~count:60 name arbitrary_batches (fun batches ->
      let scorer, threshold = Lazy.force scorer_and_threshold in
      let reference =
        by_session (serial_replay ?adaptive ~scorer ~threshold batches)
      in
      List.for_all
        (fun shards ->
          by_session
            (sharded_replay ?adaptive ~scorer ~threshold ~shards batches)
          = reference)
        [ 1; 2; 4 ])

let prop_shard_invariant =
  shard_invariant_prop "per-session log invariant under shard count"

let prop_shard_invariant_adaptive =
  shard_invariant_prop ~adaptive:twitchy_adaptive
    "adaptive: per-session log invariant under shard count"

let kill_resume_prop ?adaptive name =
  qcheck ~count:40 name arbitrary_batches (fun batches ->
      let scorer, threshold = Lazy.force scorer_and_threshold in
      let shards = 2 in
      let reference =
        by_session (serial_replay ?adaptive ~scorer ~threshold batches)
      in
      let dir = Filename.temp_file "seqdiv-session-table" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      Fun.protect
        ~finally:(fun () ->
          Array.iter
            (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
            (Sys.readdir dir);
          Unix.rmdir dir)
        (fun () ->
          let journal_path shard =
            Filename.concat dir (Printf.sprintf "shard-%d.journal" shard)
          in
          let context shard = Printf.sprintf "test shard=%d" shard in
          let open_tables ~resume =
            Array.init shards (fun shard ->
                let journal =
                  Shard_journal.start ~resume ~context:(context shard)
                    (journal_path shard)
                in
                Session_table.create ~scorer ~threshold ?adaptive ~journal
                  ~shard ())
          in
          let apply_batch tables batch_id events =
            let buckets = route_events ~shards events in
            List.concat
              (List.init shards (fun shard ->
                   match buckets.(shard) with
                   | [] -> []
                   | sub -> Session_table.apply tables.(shard) ~batch_id sub))
          in
          let batches = Array.of_list batches in
          let n = Array.length batches in
          let cut = Stdlib.max 1 (n / 2) in
          (* Phase 1: the first half of the stream, journalled. *)
          let tables = open_tables ~resume:false in
          let first_half = ref [] and last_applied = ref [] in
          for i = 0 to cut - 1 do
            let evs = apply_batch tables i batches.(i) in
            first_half := evs :: !first_half;
            last_applied := evs
          done;
          let first_half = List.concat (List.rev !first_half) in
          (* Crash: drop the tables, reopen everything from the journals. *)
          let resumed = open_tables ~resume:true in
          (* The client resends its last unacked batch; the journal's
             batch history must answer it verbatim without re-applying. *)
          let resent = apply_batch resumed (cut - 1) batches.(cut - 1) in
          let replays =
            Array.fold_left
              (fun a t -> a + Session_table.batches_replayed t)
              0 resumed
          in
          (* Phase 2: the rest of the stream on the resumed tables. *)
          let second_half = ref [] in
          for i = cut to n - 1 do
            second_half := apply_batch resumed i batches.(i) :: !second_half
          done;
          let second_half = List.concat (List.rev !second_half) in
          let interrupted = by_session (first_half @ second_half) in
          interrupted = reference && replays > 0
          && List.map Frame.render_incident_event resent
             = List.map Frame.render_incident_event !last_applied))

let prop_kill_resume =
  kill_resume_prop "kill/resume + resent batch = uninterrupted run"

let prop_kill_resume_adaptive =
  kill_resume_prop ~adaptive:twitchy_adaptive
    "adaptive: kill/resume + resent batch = uninterrupted run"

(* {1 Unit tests: counters and lifecycle} *)

let test_counters () =
  let scorer, threshold = Lazy.force scorer_and_threshold in
  let table = Session_table.create ~scorer ~threshold ~shard:3 () in
  Alcotest.(check int) "shard recorded" 3 (Session_table.shard table);
  Alcotest.(check int) "empty" 0 (Session_table.sessions_resident table);
  let _ =
    Session_table.apply table ~batch_id:0
      [
        Frame.Data { session = 1; symbols = [| 0; 1; 2; 3; 0 |] };
        Frame.Data { session = 2; symbols = [| 4; 5 |] };
      ]
  in
  Alcotest.(check int) "two sessions" 2 (Session_table.sessions_resident table);
  Alcotest.(check int) "events counted" 2 (Session_table.events_applied table);
  Alcotest.(check int) "symbols counted" 7 (Session_table.symbols_applied table);
  Alcotest.(check int) "one batch" 1 (Session_table.batches_applied table);
  Alcotest.(check bool) "memory estimated" true
    (Session_table.bytes_resident table > 0);
  let _ =
    Session_table.apply table ~batch_id:1
      [ Frame.End_of_session { session = 1 } ]
  in
  Alcotest.(check int) "ended session dropped" 1
    (Session_table.sessions_resident table);
  (* Ending a session the table never saw is a harmless no-op. *)
  let evs =
    Session_table.apply table ~batch_id:2
      [ Frame.End_of_session { session = 99 } ]
  in
  Alcotest.(check int) "unknown end is silent" 0 (List.length evs)

let test_dedup_without_journal () =
  (* Even journal-less tables keep the in-memory history window, so a
     resent batch on a live connection is not applied twice. *)
  let scorer, threshold = Lazy.force scorer_and_threshold in
  let table = Session_table.create ~scorer ~threshold ~shard:0 () in
  let batch = [ Frame.Data { session = 1; symbols = [| 0; 0; 0; 0; 0 |] } ] in
  let first = Session_table.apply table ~batch_id:7 batch in
  let symbols_after = Session_table.symbols_applied table in
  let again = Session_table.apply table ~batch_id:7 batch in
  Alcotest.(check int) "no re-apply" symbols_after
    (Session_table.symbols_applied table);
  Alcotest.(check int) "one replay" 1 (Session_table.batches_replayed table);
  Alcotest.(check bool) "identical answer" true
    (List.map Frame.render_incident_event first
    = List.map Frame.render_incident_event again)

let () =
  Alcotest.run "session_table"
    [
      ( "session_table",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "dedup" `Quick test_dedup_without_journal;
          prop_shard_invariant;
          prop_shard_invariant_adaptive;
          prop_kill_resume;
          prop_kill_resume_adaptive;
        ] );
    ]
