(* The supervision layer's promises: faults stay in their own slot,
   transient faults are retried to full recovery, fatal faults degrade
   only their own cells, and a chaos-recovered run is byte-identical
   to an undisturbed one. *)

open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_report
open Seqdiv_util
open Seqdiv_test_support

(* --- Pool.map_result isolation ----------------------------------------- *)

exception Boom of int

let should_fail x = x mod 3 = 0
let f x = if should_fail x then raise (Boom x) else (x * x) + 1

let map_result_isolates =
  qcheck ~count:200 "map_result: order kept, every fault in its own slot"
    QCheck.(pair (list small_int) (oneofl [ 1; 4 ]))
    (fun (l, jobs) ->
      let pool = Pool.create ~jobs () in
      let results = Pool.map_result pool f l in
      List.length results = List.length l
      && List.for_all2
           (fun i (x, r) ->
             match r with
             | Ok v -> (not (should_fail x)) && v = (x * x) + 1
             | Error { Pool.index; exn; _ } ->
                 should_fail x && index = i && exn = Boom x)
           (List.mapi (fun i _ -> i) l)
           (List.combine l results))

let test_map2_mismatch_runs_nothing () =
  (* The length guard fires before any task starts: the closure must
     never observe a call, at any jobs count. *)
  let ran = ref 0 in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      (match Pool.map2 pool (fun a b -> incr ran; a + b) [ 1; 2; 3 ] [ 1 ] with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
      Alcotest.(check int) "no task executed" 0 !ran)
    [ 1; 4 ]

(* Two raise sites on different source lines, so their backtraces are
   distinguishable. *)
let first_failure () = raise (Boom 1)
let second_failure () = raise (Boom 2)

let backtrace_task x =
  if x = 1 then first_failure () else if x = 2 then second_failure () else x

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let test_same_chunk_failures_keep_own_backtraces () =
  (* Both failures land in the same worker chunk (chunk = input
     length): catching the second must not clobber the backtrace
     recorded for the first. *)
  Printexc.record_backtrace true;
  List.iter
    (fun jobs ->
      let pool = Pool.create ~chunk:4 ~jobs () in
      match Pool.map_result pool backtrace_task [ 0; 1; 2; 3 ] with
      | [ Ok 0; Error e1; Error e2; Ok 3 ] ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: own exceptions" jobs)
            true
            (e1.Pool.exn = Boom 1 && e2.Pool.exn = Boom 2);
          let b1 = Printexc.raw_backtrace_to_string e1.Pool.backtrace in
          let b2 = Printexc.raw_backtrace_to_string e2.Pool.backtrace in
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: backtraces recorded" jobs)
            true
            (String.length b1 > 0 && String.length b2 > 0);
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: each failure keeps its own raise site"
               jobs)
            true
            (first_line b1 <> first_line b2)
      | _ -> Alcotest.fail "unexpected result shape")
    [ 1; 2 ]

let test_map_reraises_lowest_index_backtrace () =
  (* Pool.map re-raises the lowest-index failure; the backtrace the
     caller observes must be that slot's own, not the last one the
     worker happened to catch. *)
  Printexc.record_backtrace true;
  let input = [ 0; 1; 2; 3 ] in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~chunk:4 ~jobs () in
      let recorded =
        match Pool.map_result pool backtrace_task input with
        | [ _; Error e; _; _ ] -> Printexc.raw_backtrace_to_string e.Pool.backtrace
        | _ -> Alcotest.fail "unexpected result shape"
      in
      match Pool.map pool backtrace_task input with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d: lowest-index failure re-raised" jobs)
            1 n;
          (* Unwinding appends "Called from" frames but preserves the
             raise site at the head. *)
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d: original raise site survives" jobs)
            (first_line recorded)
            (first_line (Printexc.get_backtrace ())))
    [ 1; 2 ]

(* --- Fault_plan determinism -------------------------------------------- *)

let plan_is_stateless =
  qcheck ~count:500 "Fault_plan.decide is a pure function of its inputs"
    QCheck.(triple small_int int (int_range 0 3))
    (fun (seed, key, attempt) ->
      let plan =
        Fault_plan.of_seed ~transient_rate:0.3 ~fatal_rate:0.1 ~seed ()
      in
      let key = Int64.of_int key in
      Fault_plan.decide plan ~key ~attempt
      = Fault_plan.decide plan ~key ~attempt)

let test_plan_rates_validated () =
  List.iter
    (fun (t, f) ->
      match Fault_plan.of_seed ~transient_rate:t ~fatal_rate:f ~seed:1 () with
      | _ -> Alcotest.failf "rates (%g, %g) should be rejected" t f
      | exception Invalid_argument _ -> ())
    [ (-0.1, 0.0); (1.5, 0.0); (0.0, -1.0); (0.8, 0.4) ]

let test_plan_sticky_transients_clear () =
  (* A transient-fated key fails its first [sticky] attempts and then
     succeeds forever. *)
  let plan =
    Fault_plan.of_seed ~transient_rate:1.0 ~fatal_rate:0.0 ~sticky:2 ~seed:3 ()
  in
  let key = 42L in
  Alcotest.(check bool) "attempt 0 faulted" true
    (Fault_plan.decide plan ~key ~attempt:0 = Some Fault.Transient);
  Alcotest.(check bool) "attempt 1 faulted" true
    (Fault_plan.decide plan ~key ~attempt:1 = Some Fault.Transient);
  Alcotest.(check bool) "attempt 2 clear" true
    (Fault_plan.decide plan ~key ~attempt:2 = None)

(* --- chaos over the full grid ------------------------------------------ *)

let grid_suite_cache = ref None

let grid_suite () =
  (* The paper's full 8 x 14 grid, scaled lengths. *)
  match !grid_suite_cache with
  | Some suite -> suite
  | None ->
      let suite =
        Suite.build (Suite.scaled_params ~train_len:60_000 ~background_len:3_000)
      in
      grid_suite_cache := Some suite;
      suite

let grid_detectors () =
  List.map Registry.find_exn [ "stide"; "tstide"; "markov"; "lnb" ]

let renderings maps =
  String.concat "\n" (List.map Ascii_map.render maps)

let baseline_cache = ref None

let baseline_maps () =
  match !baseline_cache with
  | Some maps -> maps
  | None ->
      let maps =
        Experiment.all_maps
          ~engine:(Engine.create ~jobs:1 ())
          (grid_suite ()) (grid_detectors ())
      in
      baseline_cache := Some maps;
      maps

let test_transient_chaos_full_recovery () =
  (* >= 5% transient faults into every train/score task of the full
     grid: the default retry budget absorbs every one, no cell fails,
     and the rendered maps are byte-identical to the fault-free run. *)
  let fresh = renderings (baseline_maps ()) in
  List.iter
    (fun jobs ->
      let plan = Fault_plan.of_seed ~transient_rate:0.05 ~seed:7 () in
      let e = Engine.create ~jobs ~fault_plan:plan () in
      let maps = Experiment.all_maps ~engine:e (grid_suite ()) (grid_detectors ()) in
      let s = Engine.stats e in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: faults actually fired" jobs)
        true
        (s.Engine.faults_injected > 0);
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: every fault retried" jobs)
        s.Engine.faults_injected s.Engine.retries;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: zero failed cells" jobs)
        0 s.Engine.cells_failed;
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d: byte-identical to fault-free run" jobs)
        fresh (renderings maps))
    [ 1; 4 ]

let test_fatal_chaos_degrades_only_faulted_cells () =
  (* Fatal faults are never retried: the fated cells come back Failed
     (attempts = 1), every other cell is byte-identical to the
     fault-free run. *)
  let plan = Fault_plan.of_seed ~transient_rate:0.0 ~fatal_rate:0.08 ~seed:11 () in
  let e = Engine.create ~jobs:4 ~fault_plan:plan () in
  let maps = Experiment.all_maps ~engine:e (grid_suite ()) (grid_detectors ()) in
  let s = Engine.stats e in
  Alcotest.(check bool) "some cells failed" true (s.Engine.cells_failed > 0);
  Alcotest.(check int) "fatal faults never retried" 0 s.Engine.retries;
  let failed = ref 0 in
  List.iter2
    (fun chaos_map fresh_map ->
      Performance_map.fold chaos_map ~init:() ~f:(fun () ~anomaly_size ~window o ->
          match o with
          | Outcome.Failed fault ->
              incr failed;
              Alcotest.(check string) "failure is the injected fatal" "fatal"
                (Fault.severity_to_string fault.Fault.severity);
              Alcotest.(check int) "single attempt" 1 fault.Fault.attempts
          | o ->
              Alcotest.(check bool)
                (Printf.sprintf "cell (%d, %d) matches fault-free run"
                   anomaly_size window)
                true
                (Outcome.equal o
                   (Performance_map.outcome fresh_map ~anomaly_size ~window))))
    maps (baseline_maps ());
  Alcotest.(check int) "stats agree with the maps" s.Engine.cells_failed !failed

let test_sticky_past_budget_exhausts () =
  (* sticky > retries: the transient keeps recurring until the budget
     runs out, and the cell fails carrying the full attempt count. *)
  let retries = 2 in
  let plan = Fault_plan.of_seed ~transient_rate:0.08 ~sticky:5 ~seed:13 () in
  let e = Engine.create ~jobs:4 ~retries ~fault_plan:plan () in
  let maps = Experiment.all_maps ~engine:e (grid_suite ()) (grid_detectors ()) in
  let s = Engine.stats e in
  Alcotest.(check bool) "some cells failed" true (s.Engine.cells_failed > 0);
  List.iter
    (fun m ->
      Performance_map.fold m ~init:() ~f:(fun () ~anomaly_size:_ ~window:_ o ->
          match o with
          | Outcome.Failed fault ->
              Alcotest.(check string) "exhausted transient" "transient"
                (Fault.severity_to_string fault.Fault.severity);
              Alcotest.(check int) "budget fully consumed" (retries + 1)
                fault.Fault.attempts
          | _ -> ()))
    maps

let test_chaos_identical_across_jobs () =
  (* The same plan injects the same faults regardless of scheduling:
     degraded runs are byte-identical across jobs counts too. *)
  let run jobs =
    let plan = Fault_plan.of_seed ~transient_rate:0.0 ~fatal_rate:0.08 ~seed:11 () in
    let e = Engine.create ~jobs ~fault_plan:plan () in
    renderings (Experiment.all_maps ~engine:e (grid_suite ()) (grid_detectors ()))
  in
  Alcotest.(check string) "jobs=1 = jobs=4 under fatal chaos" (run 1) (run 4)

let test_failed_cells_render_distinctly () =
  let plan = Fault_plan.of_seed ~transient_rate:0.0 ~fatal_rate:0.08 ~seed:11 () in
  let e = Engine.create ~jobs:1 ~fault_plan:plan () in
  let maps = Experiment.all_maps ~engine:e (grid_suite ()) (grid_detectors ()) in
  let degraded = List.find (fun m -> Performance_map.failed_cells m <> []) maps in
  let txt = Ascii_map.render degraded in
  Alcotest.(check bool) "'!' glyph present" true (String.contains txt '!');
  Alcotest.(check bool) "failure footer present" true
    (let needle = "FAILED" in
     let n = String.length txt and k = String.length needle in
     let rec at i = i + k <= n && (String.sub txt i k = needle || at (i + 1)) in
     at 0);
  let summary = Experiment.summary degraded in
  Alcotest.(check int) "summary counts the failures"
    (List.length (Performance_map.failed_cells degraded))
    summary.Experiment.failed

let () =
  Alcotest.run "supervision"
    [
      ( "pool",
        [
          map_result_isolates;
          Alcotest.test_case "map2 mismatch runs nothing" `Quick
            test_map2_mismatch_runs_nothing;
          Alcotest.test_case "same-chunk failures keep own backtraces" `Quick
            test_same_chunk_failures_keep_own_backtraces;
          Alcotest.test_case "map re-raises lowest-index backtrace" `Quick
            test_map_reraises_lowest_index_backtrace;
        ] );
      ( "fault-plan",
        [
          plan_is_stateless;
          Alcotest.test_case "rates validated" `Quick test_plan_rates_validated;
          Alcotest.test_case "sticky transients clear" `Quick
            test_plan_sticky_transients_clear;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "transient chaos fully recovers" `Slow
            test_transient_chaos_full_recovery;
          Alcotest.test_case "fatal chaos degrades only its cells" `Slow
            test_fatal_chaos_degrades_only_faulted_cells;
          Alcotest.test_case "sticky past budget exhausts" `Slow
            test_sticky_past_budget_exhausts;
          Alcotest.test_case "chaos identical across jobs" `Slow
            test_chaos_identical_across_jobs;
          Alcotest.test_case "failed cells render distinctly" `Slow
            test_failed_cells_render_distinctly;
        ] );
    ]
