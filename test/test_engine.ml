(* The engine's two load-bearing promises: results are byte-identical
   at every jobs count, and the model cache trains each
   (detector, window, training-trace) triple exactly once. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_util
open Seqdiv_test_support

(* --- pool -------------------------------------------------------------- *)

let square x = (x * x) + 1

let pool_map_matches_list_map =
  qcheck ~count:200 "Pool.map = List.map at any jobs/chunk"
    QCheck.(triple (list small_int) (int_range 1 4) (int_range 1 4))
    (fun (l, jobs, chunk) ->
      let pool = Pool.create ~chunk ~jobs () in
      Pool.map pool square l = List.map square l)

let pool_map2_matches_list_map2 =
  qcheck ~count:200 "Pool.map2 = List.map2"
    QCheck.(pair (list small_int) (int_range 1 4))
    (fun (l, jobs) ->
      let pool = Pool.create ~jobs () in
      let r = List.map (fun x -> x + 7) l in
      Pool.map2 pool (fun a b -> a * b) l r = List.map2 (fun a b -> a * b) l r)

exception Boom

let test_pool_propagates_exception () =
  let pool = Pool.create ~jobs:4 () in
  match Pool.map pool (fun x -> if x = 3 then raise Boom else x) [ 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom -> ()

let test_pool_map2_length_mismatch () =
  let pool = Pool.create ~jobs:2 () in
  match Pool.map2 pool ( + ) [ 1; 2 ] [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- serial/parallel equivalence --------------------------------------- *)

(* Small per-seed suites, cached so qcheck repeats are free. *)
let suite_cache = Hashtbl.create 4

let suite_for seed =
  match Hashtbl.find_opt suite_cache seed with
  | Some suite -> suite
  | None ->
      let params =
        {
          (Suite.scaled_params ~train_len:30_000 ~background_len:1_500) with
          Suite.dw_max = 6;
          seed;
        }
      in
      let suite = Suite.build params in
      Hashtbl.add suite_cache seed suite;
      suite

let cells m =
  List.rev
    (Performance_map.fold m ~init:[] ~f:(fun acc ~anomaly_size ~window o ->
         (anomaly_size, window, o) :: acc))

let maps_equal a b =
  Performance_map.detector a = Performance_map.detector b
  &&
  let ca = cells a and cb = cells b in
  List.length ca = List.length cb
  && List.for_all2
       (fun (s1, w1, o1) (s2, w2, o2) ->
         s1 = s2 && w1 = w2 && Outcome.equal o1 o2)
       ca cb

let all_maps_with ~jobs suite detectors =
  Experiment.all_maps ~engine:(Engine.create ~jobs ()) suite detectors

let serial_equals_parallel =
  (* The deterministic-metric detectors over several random suites; the
     PRNG-seeded ones are covered by the unit test below. *)
  let detectors =
    List.map Registry.find_exn [ "stide"; "tstide"; "markov"; "lnb" ]
  in
  qcheck ~count:6 "all_maps: jobs=1 = jobs=4 on random suites"
    (QCheck.oneofl [ 3; 11; 2005 ])
    (fun seed ->
      let suite = suite_for seed in
      List.for_all2 maps_equal
        (all_maps_with ~jobs:1 suite detectors)
        (all_maps_with ~jobs:4 suite detectors))

let test_all_detectors_parallel_equal () =
  (* Every paper detector, including the PRNG-seeded neural network:
     one full plan serial vs parallel, compared cell by cell. *)
  let suite = suite_for 3 in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "identical map for %s" (Performance_map.detector a))
        true (maps_equal a b))
    (all_maps_with ~jobs:1 suite Registry.all)
    (all_maps_with ~jobs:4 suite Registry.all)

(* --- model cache ------------------------------------------------------- *)

(* A detector whose training is observable: every [train] call records
   its window, and scoring is all-zero (so every cell is Blind). *)
let train_calls = ref []

module Counting = struct
  type model = int

  let name = "counting"
  let maximal_epsilon = 0.0

  let train ~window _trace =
    train_calls := window :: !train_calls;
    window

  let train_of_trie = None
  let compile = None
  let window m = m

  let score_range m trace ~lo ~hi =
    let lo, hi =
      Detector.clamp_range ~trace_len:(Trace.length trace) ~window:m ~lo ~hi
    in
    let items =
      if hi < lo then [||]
      else
        Array.init
          (hi - lo + 1)
          (fun i -> { Response.start = lo + i; cover = m; score = 0.0 })
    in
    Response.make ~detector:name ~window:m items

  let score m trace =
    let lo, hi = Detector.full_range ~trace_len:(Trace.length trace) ~window:m in
    score_range m trace ~lo ~hi
end

let test_cache_trains_each_window_once () =
  let suite = suite_for 3 in
  let windows = Suite.windows suite in
  let d = (module Counting : Detector.S) in
  train_calls := [];
  let e = Engine.create () in
  let m1 = Engine.performance_map e suite d in
  Alcotest.(check int) "first map: one train per window"
    (List.length windows) (List.length !train_calls);
  Alcotest.(check (list int)) "each window trained exactly once"
    (List.sort compare windows)
    (List.sort compare !train_calls);
  let injection ~anomaly_size ~window =
    (Suite.stream suite ~anomaly_size ~window).Suite.injection
  in
  let m2 = Engine.performance_map_over e suite ~injection d in
  Alcotest.(check int) "second map: every model from the cache"
    (List.length windows) (List.length !train_calls);
  Alcotest.(check bool) "both maps agree" true (maps_equal m1 m2);
  let s = Engine.stats e in
  Alcotest.(check int) "stats: trained" (List.length windows)
    s.Engine.train_executed;
  Alcotest.(check int) "stats: cache hits" (List.length windows)
    s.Engine.train_cached;
  Alcotest.(check int) "stats: score tasks"
    (2 * Performance_map.cell_count m1)
    s.Engine.score_tasks

let test_shared_trie_cache () =
  (* One training trace, three trie-capable detectors, every window:
     the engine builds exactly one trie and serves every other model as
     a view of it. *)
  let suite = suite_for 3 in
  let windows = Suite.windows suite in
  let detectors = List.map Registry.find_exn [ "stide"; "tstide"; "markov" ] in
  let e = Engine.create () in
  let maps = Experiment.all_maps ~engine:e suite detectors in
  let capable = 3 * List.length windows in
  let s = Engine.stats e in
  Alcotest.(check int) "one shared trie for the training trace" 1
    s.Engine.tries_built;
  Alcotest.(check int) "every other trie-backed model is a view"
    (capable - 1) s.Engine.trie_hits;
  Alcotest.(check bool) "trie node count surfaced" true
    (s.Engine.trie_nodes > 0);
  (* A second identical run answers from the model cache: no new tries,
     no new views, identical maps. *)
  let maps' = Experiment.all_maps ~engine:e suite detectors in
  let s' = Engine.stats e in
  Alcotest.(check int) "still one trie" 1 s'.Engine.tries_built;
  Alcotest.(check int) "no further trie activity" (capable - 1)
    s'.Engine.trie_hits;
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "identical map for %s" (Performance_map.detector a))
        true (maps_equal a b))
    maps maps'

let test_train_batch_dedups_specs () =
  let suite = suite_for 3 in
  let d = (module Counting : Detector.S) in
  train_calls := [];
  let e = Engine.create () in
  let spec = (d, 4, suite.Suite.training) in
  (match Engine.train_batch e [ spec; spec; spec ] with
  | [ a; b; c ] ->
      Alcotest.(check bool) "same model answered" true (a == b && b == c)
  | _ -> Alcotest.fail "expected three results");
  Alcotest.(check int) "one training for three identical specs" 1
    (List.length !train_calls)

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          pool_map_matches_list_map;
          pool_map2_matches_list_map2;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "map2 length mismatch" `Quick
            test_pool_map2_length_mismatch;
        ] );
      ( "determinism",
        [
          serial_equals_parallel;
          Alcotest.test_case "all detectors, serial = parallel" `Slow
            test_all_detectors_parallel_equal;
        ] );
      ( "cache",
        [
          Alcotest.test_case "trains each window once" `Quick
            test_cache_trains_each_window_once;
          Alcotest.test_case "shared trie built once" `Quick
            test_shared_trie_cache;
          Alcotest.test_case "train_batch dedups" `Quick
            test_train_batch_dedups_specs;
        ] );
    ]
