(* The serve layer's per-shard journal: commit-group atomicity is the
   property under test.  Recovery must restore exactly the committed
   groups — a torn tail or an uncommitted group disappears whole, never
   as a half-applied flush — and compaction must be invisible to the
   recovered state. *)

open Seqdiv_stream
open Seqdiv_core

let temp_path () = Filename.temp_file "seqdiv-shard-journal" ".journal"

let with_temp f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let context = "serve model=stide depth=6 states=276 threshold=3ff0000000000000 shards=2 shard=0"

let session ?(consumed = 100) ?(state = 42) ?open_incident ?adaptive id =
  {
    Shard_journal.js_session = id;
    js_consumed = consumed;
    js_state = state;
    js_open = open_incident;
    js_adaptive = adaptive;
  }

let incident =
  {
    Frame.first_start = 95;
    last_start = 103;
    cover_from = 95;
    cover_to = 108;
    alarms = 4;
    peak_score = 0.25;
  }

let batch ?(shard = 0) ?(events = 10) ?(incidents = []) id =
  { Shard_journal.jb_id = id; jb_shard = shard; jb_events = events; jb_incidents = incidents }

let commit_group j sessions ends batches =
  List.iter (Shard_journal.record_session j) sessions;
  List.iter (fun s -> Shard_journal.record_end j ~session:s) ends;
  List.iter (Shard_journal.record_batch j) batches;
  Shard_journal.commit j

let session_ids j =
  List.map (fun s -> s.Shard_journal.js_session) (Shard_journal.sessions j)

let batch_ids j =
  List.map (fun b -> b.Shard_journal.jb_id) (Shard_journal.batches j)

let test_roundtrip () =
  with_temp (fun path ->
      let j = Shard_journal.start ~context path in
      commit_group j
        [ session 3; session 1 ~open_incident:incident ]
        []
        [ batch 0 ~incidents:[ Frame.Opened { session = 1; position = 95 } ] ];
      commit_group j [ session 2 ] [ 3 ] [ batch 1 ];
      let r = Shard_journal.start ~resume:true ~context path in
      Alcotest.(check (list int)) "live sessions, ascending" [ 1; 2 ]
        (session_ids r);
      Alcotest.(check (list int)) "batches oldest first" [ 0; 1 ] (batch_ids r);
      Alcotest.(check int) "nothing dropped" 0 (Shard_journal.dropped_lines r);
      let s1 =
        List.find
          (fun s -> s.Shard_journal.js_session = 1)
          (Shard_journal.sessions r)
      in
      Alcotest.(check bool) "open incident survives" true
        (match s1.Shard_journal.js_open with
        | Some i -> i = incident
        | None -> false);
      match Shard_journal.batches r with
      | [ b0; _ ] ->
          Alcotest.(check int) "incident events retained" 1
            (List.length b0.Shard_journal.jb_incidents)
      | _ -> Alcotest.fail "expected two batch records")

let test_latest_record_wins () =
  with_temp (fun path ->
      let j = Shard_journal.start ~context path in
      commit_group j [ session 5 ~consumed:10 ] [] [ batch 0 ];
      commit_group j [ session 5 ~consumed:20 ] [] [ batch 1 ];
      let r = Shard_journal.start ~resume:true ~context path in
      match Shard_journal.sessions r with
      | [ s ] ->
          Alcotest.(check int) "newest snapshot" 20 s.Shard_journal.js_consumed
      | _ -> Alcotest.fail "expected one live session")

let test_uncommitted_group_dropped () =
  with_temp (fun path ->
      let j = Shard_journal.start ~context path in
      commit_group j [ session 1 ~consumed:10 ] [] [ batch 0 ];
      commit_group j [ session 1 ~consumed:20; session 2 ] [] [ batch 1 ];
      (* Simulate a crash between the group's records and its commit
         marker: chop the marker line (the last line) off the file. *)
      let lines =
        In_channel.with_open_bin path In_channel.input_all
        |> String.split_on_char '\n'
      in
      let n = List.length lines in
      (* input_all leaves a trailing "" after the final newline *)
      let kept = List.filteri (fun i _ -> i < n - 2) lines in
      Out_channel.with_open_bin path (fun oc ->
          List.iter
            (fun l ->
              Out_channel.output_string oc l;
              Out_channel.output_char oc '\n')
            kept);
      let r = Shard_journal.start ~resume:true ~context path in
      Alcotest.(check bool) "tail group dropped" true
        (Shard_journal.dropped_lines r > 0);
      (match Shard_journal.sessions r with
      | [ s ] ->
          Alcotest.(check int) "session 2 never existed" 1
            s.Shard_journal.js_session;
          (* The atomicity property: session 1 must NOT carry the second
             group's snapshot, because batch 1's record is gone with it. *)
          Alcotest.(check int) "state rolled back with its batch" 10
            s.Shard_journal.js_consumed
      | _ -> Alcotest.fail "expected exactly session 1");
      Alcotest.(check (list int)) "batch 1 dropped with its group" [ 0 ]
        (batch_ids r))

let test_torn_tail_dropped () =
  with_temp (fun path ->
      let j = Shard_journal.start ~context path in
      commit_group j [ session 1 ] [] [ batch 0 ];
      commit_group j [ session 2 ] [] [ batch 1 ];
      (* Torn write: the file ends mid-line. *)
      let contents = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub contents 0 (String.length contents - 7)));
      let r = Shard_journal.start ~resume:true ~context path in
      Alcotest.(check bool) "something dropped" true
        (Shard_journal.dropped_lines r > 0);
      Alcotest.(check (list int)) "first group intact" [ 1 ] (session_ids r);
      Alcotest.(check (list int)) "second batch gone" [ 0 ] (batch_ids r);
      (* The journal stays writable after recovering around the tear. *)
      commit_group r [ session 9 ] [] [ batch 9 ];
      let r2 = Shard_journal.start ~resume:true ~context path in
      Alcotest.(check (list int)) "appendable after recovery" [ 1; 9 ]
        (session_ids r2))

let test_context_mismatch () =
  with_temp (fun path ->
      let j = Shard_journal.start ~context path in
      commit_group j [ session 1 ] [] [ batch 0 ];
      match Shard_journal.start ~resume:true ~context:(context ^ " shards=4") path with
      | _ -> Alcotest.fail "foreign context accepted"
      | exception Shard_journal.Corrupt _ -> ())

let test_fresh_start_truncates () =
  with_temp (fun path ->
      let j = Shard_journal.start ~context path in
      commit_group j [ session 1 ] [] [ batch 0 ];
      (* Without resume, starting over discards history. *)
      let j2 = Shard_journal.start ~context path in
      Alcotest.(check (list int)) "empty" [] (session_ids j2);
      Alcotest.(check int) "no recovered sessions" 0
        (Shard_journal.recovered_sessions j2))

let test_batch_history_bounded () =
  with_temp (fun path ->
      let j = Shard_journal.start ~batch_history:4 ~context path in
      for i = 0 to 19 do
        commit_group j [ session 1 ~consumed:i ] [] [ batch i ]
      done;
      let r = Shard_journal.start ~resume:true ~batch_history:4 ~context path in
      Alcotest.(check (list int)) "only the newest window" [ 16; 17; 18; 19 ]
        (batch_ids r))

let test_compaction_invisible () =
  with_temp (fun path ->
      let j = Shard_journal.start ~batch_history:4 ~context path in
      (* Sessions come and go; the live set stays small so the rewrite
         threshold keeps firing. *)
      for i = 0 to 199 do
        commit_group j
          [ session (i mod 3) ~consumed:i ]
          (if i mod 7 = 0 then [ (i + 1) mod 3 ] else [])
          [ batch i ]
      done;
      Alcotest.(check bool) "compaction fired" true
        (Shard_journal.compactions j > 0);
      let live = session_ids j in
      let r = Shard_journal.start ~resume:true ~batch_history:4 ~context path in
      Alcotest.(check (list int)) "live set survives compaction" live
        (session_ids r);
      Alcotest.(check (list int)) "history window survives compaction"
        [ 196; 197; 198; 199 ] (batch_ids r))

let () =
  Alcotest.run "shard_journal"
    [
      ( "shard_journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "latest record wins" `Quick test_latest_record_wins;
          Alcotest.test_case "uncommitted group dropped" `Quick
            test_uncommitted_group_dropped;
          Alcotest.test_case "torn tail dropped" `Quick test_torn_tail_dropped;
          Alcotest.test_case "context mismatch" `Quick test_context_mismatch;
          Alcotest.test_case "fresh start truncates" `Quick
            test_fresh_start_truncates;
          Alcotest.test_case "batch history bounded" `Quick
            test_batch_history_bounded;
          Alcotest.test_case "compaction invisible" `Quick
            test_compaction_invisible;
        ] );
    ]
