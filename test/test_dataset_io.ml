open Seqdiv_stream
open Seqdiv_synth

let with_temp_dir f =
  let dir = Filename.temp_file "seqdiv_suite" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let small () =
  Suite.build
    { (Suite.scaled_params ~train_len:20_000 ~background_len:1_000) with
      Suite.as_max = 4;
      dw_max = 5;
    }

let test_round_trip () =
  with_temp_dir (fun dir ->
      let suite = small () in
      Dataset_io.save suite ~dir;
      let loaded = Dataset_io.load ~dir in
      Alcotest.(check bool) "training preserved" true
        (Trace.equal suite.Suite.training loaded.Suite.training);
      Alcotest.(check int) "stream count" (Array.length suite.Suite.streams)
        (Array.length loaded.Suite.streams);
      Alcotest.(check bool) "params preserved" true
        (suite.Suite.params = loaded.Suite.params);
      Array.iter2
        (fun (a : Suite.test_stream) (b : Suite.test_stream) ->
          Alcotest.(check int) "as" a.Suite.anomaly_size b.Suite.anomaly_size;
          Alcotest.(check int) "dw" a.Suite.window b.Suite.window;
          Alcotest.(check int) "position" a.Suite.injection.Injector.position
            b.Suite.injection.Injector.position;
          Alcotest.(check (array int)) "anomaly"
            a.Suite.injection.Injector.anomaly b.Suite.injection.Injector.anomaly;
          Alcotest.(check bool) "trace" true
            (Trace.equal a.Suite.injection.Injector.trace
               b.Suite.injection.Injector.trace))
        suite.Suite.streams loaded.Suite.streams)

let test_loaded_suite_evaluates_identically () =
  with_temp_dir (fun dir ->
      let suite = small () in
      Dataset_io.save suite ~dir;
      let loaded = Dataset_io.load ~dir in
      let map s =
        Seqdiv_core.Experiment.performance_map s
          (Seqdiv_detectors.Registry.find_exn "stide")
      in
      Alcotest.(check bool) "same stide coverage" true
        (Seqdiv_core.Coverage.equal
           (Seqdiv_core.Coverage.of_map (map suite))
           (Seqdiv_core.Coverage.of_map (map loaded))))

let test_missing_manifest () =
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      match Dataset_io.load ~dir with
      | _ -> Alcotest.fail "expected failure"
      | exception Seqdiv_stream.Parse_error.Error message ->
          Alcotest.(check bool) "mentions manifest" true
            (String.length message > 0))

let test_tampered_ground_truth_detected () =
  with_temp_dir (fun dir ->
      let suite = small () in
      Dataset_io.save suite ~dir;
      (* Corrupt one stream file: replace it with a pure background. *)
      let victim = "stream_as2_dw2.trace" in
      Trace_io.to_file (Filename.concat dir victim)
        (Generator.background suite.Suite.alphabet ~len:1_002 ~phase:0);
      match Dataset_io.load ~dir with
      | _ -> Alcotest.fail "expected ground-truth mismatch"
      | exception Seqdiv_stream.Parse_error.Error message ->
          Alcotest.(check bool) "names the stream" true
            (String.length message > 0))

let test_manifest_is_plain_text () =
  with_temp_dir (fun dir ->
      let suite = small () in
      Dataset_io.save suite ~dir;
      let ic = open_in (Filename.concat dir Dataset_io.manifest_file) in
      let first = input_line ic in
      close_in ic;
      Alcotest.(check string) "versioned header" "#seqdiv-suite 1" first)

let () =
  Alcotest.run "dataset_io"
    [
      ( "dataset_io",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "evaluates identically" `Quick
            test_loaded_suite_evaluates_identically;
          Alcotest.test_case "missing manifest" `Quick test_missing_manifest;
          Alcotest.test_case "tampering detected" `Quick
            test_tampered_ground_truth_detected;
          Alcotest.test_case "plain-text manifest" `Quick test_manifest_is_plain_text;
        ] );
    ]
