(* Golden-file test for the linter's rendered output: a fixed virtual
   tree with one violation per representative rule, rendered as text
   and as SARIF, compared byte-for-byte against fixtures under
   [test/golden/].  The diagnostic order, message wording, column
   convention and SARIF shape are all load-bearing (CI diffs lint
   output against a baseline), so any byte of drift is a real
   interface change.

   To update the fixtures after an intentional change, run
   [scripts/promote-golden.sh] and review the diff like any other
   code. *)

open Seqdiv_analysis

let golden_dir =
  match Sys.getenv_opt "SEQDIV_GOLDEN_DIR" with
  | Some d -> d
  | None -> "golden"

(* One violation per layer of the rule set: per-file (R1, R3),
   whole-program (R9, R11), and marker hygiene (R12 warning). *)
let fixture_tree =
  [
    Source.make ~path:"lib/core/clocky.ml"
      ~content:"let now () = Sys.time ()\n";
    Source.make ~path:"lib/core/clocky.mli"
      ~content:"val now : unit -> float\n";
    Source.make ~path:"lib/core/partial.ml"
      ~content:
        "let head l = List.hd l\n\
         (* lint: allow partiality *)\n\
         let tail l = List.tl l\n";
    Source.make ~path:"lib/core/partial.mli"
      ~content:"val head : 'a list -> 'a\nval tail : 'a list -> 'a list\n";
    Source.make ~path:"lib/detectors/toy.ml"
      ~content:
        "let score_range m trace lo hi =\n\
        \  let acc = Array.make 1 0 in\n\
        \  for i = lo to hi do acc.(0) <- acc.(0) + m + i done;\n\
        \  Array.init (hi - lo) (fun i -> (m, Trace.get trace (lo + i)))\n";
    Source.make ~path:"lib/detectors/toy.mli"
      ~content:"val score_range : int -> 'a -> int -> int -> 'b array\n";
  ]

let diags () = Rules.run fixture_tree
let files = List.length fixture_tree

let gen_text () = Lint.render Lint.Text ~files (diags ())
let gen_sarif () = Lint.render Lint.Sarif ~files (diags ())

let scenarios =
  [ ("lint", ".txt", gen_text); ("lint", ".sarif", gen_sarif) ]

let fixture name ext = Filename.concat golden_dir (name ^ ext)

let promote () =
  List.iter
    (fun (name, ext, gen) ->
      let path = fixture name ext in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (gen ()));
      Printf.printf "promoted %s\n" path)
    scenarios

let check_golden name ext gen () =
  let path = fixture name ext in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing fixture %s — run scripts/promote-golden.sh" path;
  let expected = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string)
    (Printf.sprintf "%s matches %s byte-for-byte" (name ^ ext) path)
    expected (gen ())

let () =
  match Sys.getenv_opt "SEQDIV_GOLDEN_PROMOTE" with
  | Some _ -> promote ()
  | None ->
      Alcotest.run "lint-golden"
        [
          ( "renders",
            List.map
              (fun (name, ext, gen) ->
                Alcotest.test_case (name ^ ext) `Quick
                  (check_golden name ext gen))
              scenarios );
        ]
