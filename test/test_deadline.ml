(* The deadline layer's promises: a cooperative deadline fires after a
   deterministic amount of checkpointed work (virtual clock, no
   sleeps), a firing deadline degrades exactly the in-flight cells to
   Failed/timeout while every other cell stays byte-identical, and a
   deadline that never fires changes nothing at all — at jobs 1 and
   jobs 4 alike. *)

open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_report
open Seqdiv_util
open Seqdiv_test_support

(* --- Deadline unit behaviour (manual virtual clock) --------------------- *)

let test_spec_validated () =
  let c = Fake_clock.create ~step_ms:0.0 in
  List.iter
    (fun budget_ms ->
      match Deadline.spec ~clock:(Fake_clock.clock c) ~budget_ms with
      | _ -> Alcotest.failf "budget %d should be rejected" budget_ms
      | exception Invalid_argument _ -> ())
    [ 0; -5 ]

let test_check_fires_exactly_past_budget () =
  let c = Fake_clock.create ~step_ms:0.0 in
  let d = Deadline.arm (Deadline.spec ~clock:(Fake_clock.clock c) ~budget_ms:10) in
  Alcotest.(check bool) "fresh deadline not expired" false (Deadline.expired d);
  Fake_clock.advance c ~ms:10.0;
  Alcotest.(check bool) "at the budget, not past it" false (Deadline.expired d);
  Fake_clock.advance c ~ms:1.0;
  Alcotest.(check bool) "past the budget" true (Deadline.expired d);
  (match Deadline.check d with
  | _ -> Alcotest.fail "expected Deadline.Exceeded"
  | exception Deadline.Exceeded budget ->
      Alcotest.(check int) "payload is the budget, not the elapsed" 10 budget)

let test_checkpoint_noop_when_unarmed () =
  Alcotest.(check bool) "no ambient deadline" false (Deadline.active ());
  Deadline.checkpoint () (* must not raise *)

let test_with_deadline_scopes_and_restores () =
  let c = Fake_clock.create ~step_ms:0.0 in
  let spec = Deadline.spec ~clock:(Fake_clock.clock c) ~budget_ms:5 in
  Deadline.with_deadline spec (fun () ->
      Alcotest.(check bool) "armed inside" true (Deadline.active ()));
  Alcotest.(check bool) "disarmed after return" false (Deadline.active ());
  (match
     Deadline.with_deadline spec (fun () ->
         Fake_clock.advance c ~ms:6.0;
         Deadline.checkpoint ())
   with
  | _ -> Alcotest.fail "expected Deadline.Exceeded"
  | exception Deadline.Exceeded _ -> ());
  Alcotest.(check bool) "disarmed after raise" false (Deadline.active ())

let test_hang_refused_without_deadline () =
  match Deadline.hang () with
  | () -> Alcotest.fail "hang must refuse to start unarmed"
  | exception Deadline.Hang_refused -> ()

let test_hang_spins_until_the_watchdog_fires () =
  (* step 1ms, budget 5ms: the hang must spin a bounded, deterministic
     number of checkpoints and then raise. *)
  let c = Fake_clock.create ~step_ms:1.0 in
  let spec = Deadline.spec ~clock:(Fake_clock.clock c) ~budget_ms:5 in
  match Deadline.with_deadline spec (fun () -> Deadline.hang ()) with
  | () -> Alcotest.fail "hang must end in Exceeded"
  | exception Deadline.Exceeded budget ->
      Alcotest.(check int) "budget reported" 5 budget

let test_exceeded_renders_deterministically () =
  (* The printed fault must not mention elapsed time — it must be the
     same string in every run at every jobs count. *)
  Alcotest.(check string) "rendered exception"
    "Deadline.Exceeded(budget=7ms)"
    (Printexc.to_string (Deadline.Exceeded 7))

let test_classified_as_timeout () =
  Alcotest.(check bool) "Exceeded classifies Timeout" true
    (Fault.classify (Deadline.Exceeded 3) = Fault.Timeout);
  Alcotest.(check string) "severity renders timeout" "timeout"
    (Fault.severity_to_string Fault.Timeout);
  Alcotest.(check bool) "Hang_refused classifies Fatal" true
    (Fault.classify Deadline.Hang_refused = Fault.Fatal)

let test_fake_clock_is_domain_local () =
  (* Another domain's reads must not advance this domain's time: a
     task's observed elapsed time is its own work only. *)
  let c = Fake_clock.create ~step_ms:1.0 in
  Fake_clock.advance c ~ms:50.0;
  let other =
    Domain.spawn (fun () ->
        ignore (Fake_clock.clock c ());
        Fake_clock.now_ms c)
  in
  let other_ms = Domain.join other in
  Alcotest.(check (float 0.001)) "spawned domain starts at zero" 1.0 other_ms;
  Alcotest.(check (float 0.001)) "main domain unaffected" 50.0
    (Fake_clock.now_ms c)

(* --- grids under a virtual-clock deadline ------------------------------- *)

let detectors () =
  List.map Registry.find_exn [ "stide"; "tstide"; "markov"; "lnb" ]

let renderings maps = String.concat "\n" (List.map Ascii_map.render maps)

let baseline_cache = ref None

let baseline_maps () =
  match !baseline_cache with
  | Some maps -> maps
  | None ->
      let maps =
        Experiment.all_maps
          ~engine:(Engine.create ~jobs:1 ())
          (tiny_suite ()) (detectors ())
      in
      baseline_cache := Some maps;
      maps

(* A budget that legitimate tasks of the tiny suite never approach:
   the longest checkpointed loop (the 30k-symbol trie scan) reads the
   clock ~10 times, far under 200 virtual ms at 1 ms per read.  A
   hang-fated task reads it once per spin and dies at ~200. *)
let grid_deadline () =
  let c = Fake_clock.create ~step_ms:1.0 in
  Deadline.spec ~clock:(Fake_clock.clock c) ~budget_ms:200

let test_never_firing_deadline_is_invisible () =
  let fresh = renderings (baseline_maps ()) in
  List.iter
    (fun jobs ->
      (* A frozen clock: elapsed time is always zero. *)
      let frozen = Fake_clock.create ~step_ms:0.0 in
      let spec = Deadline.spec ~clock:(Fake_clock.clock frozen) ~budget_ms:1 in
      let e = Engine.create ~jobs ~deadline:spec () in
      let maps = Experiment.all_maps ~engine:e (tiny_suite ()) (detectors ()) in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: no cell failed" jobs)
        0 (Engine.stats e).Engine.cells_failed;
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d: byte-identical to no deadline at all" jobs)
        fresh (renderings maps);
      (* And a ticking clock under a generous budget. *)
      let e' = Engine.create ~jobs ~deadline:(grid_deadline ()) () in
      let maps' = Experiment.all_maps ~engine:e' (tiny_suite ()) (detectors ()) in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d: generous budget also invisible" jobs)
        fresh (renderings maps'))
    [ 1; 4 ]

let hang_run ~seed ~jobs =
  let plan =
    Fault_plan.of_seed ~transient_rate:0.0 ~hang_rate:0.1 ~seed ()
  in
  let e = Engine.create ~jobs ~fault_plan:plan ~deadline:(grid_deadline ()) () in
  let maps = Experiment.all_maps ~engine:e (tiny_suite ()) (detectors ()) in
  (e, maps)

let deadline_degrades_exactly_inflight_cells =
  qcheck ~count:3 "hung cells degrade to Failed/timeout, the rest untouched"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let fresh = baseline_maps () in
      List.for_all
        (fun jobs ->
          let e, maps = hang_run ~seed ~jobs in
          let s = Engine.stats e in
          (* Hangs are never retried, and every failure is a timeout. *)
          s.Engine.cells_failed > 0
          && s.Engine.cells_timed_out = s.Engine.cells_failed
          && s.Engine.retries = 0
          && List.for_all2
               (fun chaos_map fresh_map ->
                 Performance_map.fold chaos_map ~init:true
                   ~f:(fun ok ~anomaly_size ~window o ->
                     ok
                     &&
                     match o with
                     | Outcome.Failed fault ->
                         fault.Fault.severity = Fault.Timeout
                         && fault.Fault.attempts = 1
                     | o ->
                         Outcome.equal o
                           (Performance_map.outcome fresh_map ~anomaly_size
                              ~window)))
               maps fresh)
        [ 1; 4 ])

let test_hung_grid_identical_across_jobs () =
  (* The virtual clock is domain-local, so the same cells time out
     after the same number of checkpoints whatever the scheduling. *)
  let run jobs = renderings (snd (hang_run ~seed:23 ~jobs)) in
  Alcotest.(check string) "jobs=1 = jobs=4 under hang chaos" (run 1) (run 4)

let test_timeouts_render_distinctly () =
  let _, maps = hang_run ~seed:23 ~jobs:1 in
  let degraded =
    List.find (fun m -> Performance_map.failed_cells m <> []) maps
  in
  let txt = Ascii_map.render degraded in
  let contains hay needle =
    let n = String.length hay and k = String.length needle in
    let rec at i = i + k <= n && (String.sub hay i k = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "'!' glyph present" true (String.contains txt '!');
  Alcotest.(check bool) "footer names the deadline" true
    (contains txt "Deadline.Exceeded(budget=200ms)");
  Alcotest.(check bool) "CSV tags failed:timeout" true
    (List.exists (List.mem "failed:timeout") (Csv.map_rows degraded));
  (* The exit-code contract: a timed-out grid is a partial map, which
     is what makes the CLI exit 2 (checked end-to-end in check.sh). *)
  Alcotest.(check bool) "partial map reported" true
    (Performance_map.failed_cells degraded <> [])

let () =
  Alcotest.run "deadline"
    [
      ( "unit",
        [
          Alcotest.test_case "spec validated" `Quick test_spec_validated;
          Alcotest.test_case "check fires exactly past budget" `Quick
            test_check_fires_exactly_past_budget;
          Alcotest.test_case "checkpoint no-op unarmed" `Quick
            test_checkpoint_noop_when_unarmed;
          Alcotest.test_case "with_deadline scopes and restores" `Quick
            test_with_deadline_scopes_and_restores;
          Alcotest.test_case "hang refused without deadline" `Quick
            test_hang_refused_without_deadline;
          Alcotest.test_case "hang spins until the watchdog fires" `Quick
            test_hang_spins_until_the_watchdog_fires;
          Alcotest.test_case "Exceeded renders deterministically" `Quick
            test_exceeded_renders_deterministically;
          Alcotest.test_case "classified as timeout" `Quick
            test_classified_as_timeout;
          Alcotest.test_case "fake clock is domain-local" `Quick
            test_fake_clock_is_domain_local;
        ] );
      ( "grid",
        [
          Alcotest.test_case "never-firing deadline is invisible" `Slow
            test_never_firing_deadline_is_invisible;
          deadline_degrades_exactly_inflight_cells;
          Alcotest.test_case "hung grid identical across jobs" `Slow
            test_hung_grid_identical_across_jobs;
          Alcotest.test_case "timeouts render distinctly" `Slow
            test_timeouts_render_distinctly;
        ] );
    ]
