open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let response scores =
  Response.make ~detector:"x" ~window:2
    (Array.of_list
       (List.mapi
          (fun i s -> { Response.start = i; cover = 2; score = s })
          scores))

let test_of_response () =
  let s = False_alarm.of_response (response [ 1.0; 0.5; 1.0; 0.0 ]) ~threshold:1.0 in
  Alcotest.(check int) "windows" 4 s.False_alarm.windows;
  Alcotest.(check int) "alarms" 2 s.False_alarm.alarms;
  check_float "rate" ~epsilon:1e-9 0.5 s.False_alarm.rate

let test_of_response_empty () =
  let s = False_alarm.of_response (response []) ~threshold:1.0 in
  Alcotest.(check int) "windows" 0 s.False_alarm.windows;
  check_float "rate 0" ~epsilon:0.0 0.0 s.False_alarm.rate

let test_on_clean_background () =
  (* The pure-cycle background is fully covered by training: Stide
     raises no alarms at all. *)
  let suite = small_suite () in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:6
      suite.Suite.training
  in
  let bg =
    Generator.background suite.Suite.alphabet ~len:2_000 ~phase:0
  in
  let s = False_alarm.on_clean stide bg in
  Alcotest.(check int) "no alarms on clean cycle" 0 s.False_alarm.alarms

let test_markov_alarms_on_rare_content () =
  (* A fresh stream from the generating chain contains rare transitions
     that the Markov detector flags but Stide does not. *)
  let suite = small_suite () in
  let deploy = Deployment.deployment_stream suite ~len:20_000 ~seed:99 in
  let markov =
    Trained.train (Registry.find_exn "markov") ~window:6 suite.Suite.training
  in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:6 suite.Suite.training
  in
  let m = False_alarm.on_clean markov deploy in
  let s = False_alarm.on_clean stide deploy in
  Alcotest.(check bool)
    (Printf.sprintf "markov (%d) > stide (%d)" m.False_alarm.alarms
       s.False_alarm.alarms)
    true
    (m.False_alarm.alarms > s.False_alarm.alarms)

let test_outside_span_excludes_signal () =
  let suite = small_suite () in
  let window = 8 and anomaly_size = 5 in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window suite.Suite.training
  in
  let test = Suite.stream suite ~anomaly_size ~window in
  let inj = test.Suite.injection in
  let s = False_alarm.outside_span stide inj in
  (* The injected stream is clean outside the anomaly: no false alarms,
     and the windows counted exclude the incident span. *)
  Alcotest.(check int) "no alarms outside span" 0 s.False_alarm.alarms;
  let lo, hi =
    Injector.incident_span ~position:inj.Injector.position ~size:anomaly_size
      ~width:window
  in
  let total_windows =
    Seqdiv_stream.Trace.window_count inj.Injector.trace ~width:window
  in
  Alcotest.(check int) "span excluded" (total_windows - (hi - lo + 1))
    s.False_alarm.windows

let test_static_drifts_adaptive_holds () =
  (* The deployment scenario behind adaptive thresholding: a static
     threshold calibrated to the false-alarm budget on a pre-drift
     corpus blows far past it once the generating process drifts,
     while a controller started from the {e same} calibrated value
     re-tracks the quantile and holds the rate.  ([bench --adaptive]
     measures the same contrast on a larger corpus.) *)
  let suite = small_suite () in
  let budget = 0.05 in
  let markov =
    Trained.train (Registry.find_exn "markov") ~window:6 suite.Suite.training
  in
  let prng k =
    Seqdiv_util.Prng.create ~seed:(suite.Suite.params.Suite.seed + k)
  in
  let static_threshold =
    (* Calibrate offline, the paper's way: the empirical
       (1 - budget)-quantile of scores on normal pre-drift sessions. *)
    let calib =
      Session_workload.normal suite (prng 23) ~sessions:8 ~length:2_000
    in
    let scores =
      List.concat_map
        (fun trace ->
          Array.to_list
            (Array.map
               (fun i -> i.Response.score)
               (Trained.score markov trace).Response.items))
        (Seqdiv_stream.Sessions.traces calib)
    in
    let a = Array.of_list scores in
    Array.sort Float.compare a;
    let n = Array.length a in
    a.(Stdlib.min (n - 1)
         (int_of_float (Float.ceil ((1.0 -. budget) *. float_of_int n)) - 1))
  in
  let drift =
    Session_workload.drifting suite (prng 29) ~sessions:12 ~length:3_000
      ~segments:3 ~peak_deviation:0.25
  in
  let static_windows = ref 0 and static_alarms = ref 0 in
  let ctl =
    Adaptive_threshold.create
      (Adaptive_threshold.config ~budget ~initial:static_threshold ())
  in
  List.iter
    (fun trace ->
      let resp = Trained.score markov trace in
      let s = False_alarm.of_response resp ~threshold:static_threshold in
      static_windows := !static_windows + s.False_alarm.windows;
      static_alarms := !static_alarms + s.False_alarm.alarms;
      Array.iter
        (fun i -> ignore (Adaptive_threshold.step ctl i.Response.score))
        resp.Response.items)
    (Seqdiv_stream.Sessions.traces drift);
  let static_rate =
    float_of_int !static_alarms /. float_of_int !static_windows
  in
  let adaptive_rate = Adaptive_threshold.observed_rate ctl in
  Alcotest.(check int) "same windows judged" !static_windows
    (Adaptive_threshold.windows ctl);
  Alcotest.(check bool)
    (Printf.sprintf "static rate %.4f blows the budget %.2f" static_rate
       budget)
    true
    (static_rate > 2.0 *. budget);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive rate %.4f holds the budget %.2f" adaptive_rate
       budget)
    true
    (adaptive_rate > 0.0 && adaptive_rate <= (budget *. 1.5) +. 0.01)

let test_threshold_monotonicity () =
  let r = response [ 0.1; 0.4; 0.6; 0.9; 1.0 ] in
  let rate t = (False_alarm.of_response r ~threshold:t).False_alarm.rate in
  Alcotest.(check bool) "monotone" true
    (rate 0.0 >= rate 0.5 && rate 0.5 >= rate 0.95 && rate 0.95 >= rate 1.0)

let () =
  Alcotest.run "false_alarm"
    [
      ( "false_alarm",
        [
          Alcotest.test_case "of_response" `Quick test_of_response;
          Alcotest.test_case "empty" `Quick test_of_response_empty;
          Alcotest.test_case "clean background" `Quick test_on_clean_background;
          Alcotest.test_case "markov vs stide on rare content" `Quick
            test_markov_alarms_on_rare_content;
          Alcotest.test_case "outside span" `Quick test_outside_span_excludes_signal;
          Alcotest.test_case "static drifts, adaptive holds" `Quick
            test_static_drifts_adaptive_holds;
          Alcotest.test_case "threshold monotone" `Quick test_threshold_monotonicity;
        ] );
    ]
