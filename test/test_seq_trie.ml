open Seqdiv_util
open Seqdiv_stream
open Seqdiv_test_support

let key l = Trace.key_of_symbols (Array.of_list l)

(* Independent reference for trie correctness: window counts collected
   into a plain hashtable straight from the trace.  (Ngram_index is
   itself trie-backed now, so it can no longer serve as the oracle.) *)
let hash_counts trace ~len =
  let tbl = Hashtbl.create 64 in
  Trace.iter_windows trace ~width:len (fun pos ->
      let k = Trace.key trace ~pos ~len in
      Hashtbl.replace tbl k
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)));
  tbl

let agrees_with_hash trie trace ~max_len =
  let data = Trace.raw trace in
  List.for_all
    (fun len ->
      let tbl = hash_counts trace ~len in
      let keyed_ok =
        Hashtbl.fold
          (fun k c acc -> acc && Seq_trie.count trie k = c)
          tbl true
      in
      let cursor_ok = ref true in
      Trace.iter_windows trace ~width:len (fun pos ->
          let expect = Hashtbl.find tbl (Trace.key trace ~pos ~len) in
          if Seq_trie.count_at trie data ~pos ~len <> expect then
            cursor_ok := false);
      keyed_ok && !cursor_ok
      && Seq_trie.distinct trie len = Hashtbl.length tbl
      && Seq_trie.total trie len = Trace.window_count trace ~width:len)
    (List.init max_len (fun i -> i + 1))

let test_empty () =
  let t = Seq_trie.create ~alphabet_size:8 ~max_len:4 in
  Alcotest.(check int) "count" 0 (Seq_trie.count t (key [ 0; 1 ]));
  Alcotest.(check bool) "foreign" true (Seq_trie.is_foreign t (key [ 0 ]));
  Alcotest.(check int) "total" 0 (Seq_trie.total t 2);
  Alcotest.(check int) "one node (root)" 1 (Seq_trie.node_count t)

let test_add_counts_prefixes () =
  let t = Seq_trie.create ~alphabet_size:8 ~max_len:3 in
  Seq_trie.add t [| 0; 1; 2 |];
  Seq_trie.add t [| 0; 1; 3 |];
  Alcotest.(check int) "prefix 0" 2 (Seq_trie.count t (key [ 0 ]));
  Alcotest.(check int) "prefix 01" 2 (Seq_trie.count t (key [ 0; 1 ]));
  Alcotest.(check int) "012" 1 (Seq_trie.count t (key [ 0; 1; 2 ]));
  Alcotest.(check int) "distinct at 3" 2 (Seq_trie.distinct t 3);
  Alcotest.(check int) "distinct at 2" 1 (Seq_trie.distinct t 2)

let test_of_trace_totals () =
  let trace = trace8 [ 0; 1; 2; 3; 4 ] in
  let t = Seq_trie.of_trace ~max_len:3 trace in
  Alcotest.(check int) "total 1-grams" 5 (Seq_trie.total t 1);
  Alcotest.(check int) "total 2-grams" 4 (Seq_trie.total t 2);
  Alcotest.(check int) "total 3-grams" 3 (Seq_trie.total t 3)

let test_freq () =
  let trace = trace8 [ 0; 1; 0; 1; 0 ] in
  let t = Seq_trie.of_trace ~max_len:2 trace in
  check_float "freq 01" ~epsilon:1e-9 0.5 (Seq_trie.freq t (key [ 0; 1 ]));
  check_float "freq absent" ~epsilon:0.0 0.0 (Seq_trie.freq t (key [ 1; 1 ]))

let test_is_rare () =
  let symbols = List.init 200 (fun i -> if i = 100 then 2 else i mod 2) in
  let t = Seq_trie.of_trace ~max_len:2 (trace8 symbols) in
  Alcotest.(check bool) "rare symbol" true
    (Seq_trie.is_rare t ~threshold:0.05 (key [ 2 ]));
  Alcotest.(check bool) "common not rare" false
    (Seq_trie.is_rare t ~threshold:0.05 (key [ 0 ]));
  Alcotest.(check bool) "foreign not rare" false
    (Seq_trie.is_rare t ~threshold:0.05 (key [ 3 ]))

let test_cursor_lookups () =
  let trace = trace8 [ 0; 1; 2; 0; 1; 3 ] in
  let t = Seq_trie.of_trace ~max_len:3 trace in
  let data = Trace.raw trace in
  Alcotest.(check bool) "mem_at 01" true (Seq_trie.mem_at t data ~pos:0 ~len:2);
  Alcotest.(check int) "count_at 01" 2 (Seq_trie.count_at t data ~pos:0 ~len:2);
  Alcotest.(check int) "count_at 012" 1
    (Seq_trie.count_at t data ~pos:0 ~len:3);
  check_float "freq_at 01" ~epsilon:1e-9 0.4
    (Seq_trie.freq_at t data ~pos:0 ~len:2);
  (* free-standing probe array, including an out-of-alphabet symbol *)
  let probe = [| 1; 2; 999 |] in
  Alcotest.(check bool) "probe 12" true (Seq_trie.mem_at t probe ~pos:0 ~len:2);
  Alcotest.(check bool) "out-of-alphabet absent" false
    (Seq_trie.mem_at t probe ~pos:1 ~len:2);
  Alcotest.(check int) "out-of-alphabet count" 0
    (Seq_trie.count_at t probe ~pos:2 ~len:1)

let test_context_semantics () =
  (* 0 1 0 1 0: context [0] continues twice (pos 0, 2) and once dangles
     at the tail; context [1] always continues with 0. *)
  let trace = trace8 [ 0; 1; 0; 1; 0 ] in
  let t = Seq_trie.of_trace ~max_len:2 trace in
  let data = Trace.raw trace in
  (match Seq_trie.context_at t data ~pos:0 ~len:1 with
  | None -> Alcotest.fail "context [0] should exist"
  | Some node ->
      Alcotest.(check int) "ctotal [0]" 2 (Seq_trie.context_total node);
      Alcotest.(check int) "cont [0]->1" 2
        (Seq_trie.continuation_count t node 1);
      Alcotest.(check int) "cont [0]->0" 0
        (Seq_trie.continuation_count t node 0));
  (* a context seen only at the very end of the trace never continued:
     it must look absent to Markov *)
  let tail = trace8 [ 0; 1; 2 ] in
  let t2 = Seq_trie.of_trace ~max_len:2 tail in
  (match Seq_trie.context_at t2 (Trace.raw tail) ~pos:2 ~len:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "tail-only context must be absent");
  Alcotest.(check int) "tail symbol still counted" 1
    (Seq_trie.count_at t2 (Trace.raw tail) ~pos:2 ~len:1)

let test_add_at_matches_of_trace () =
  let symbols = [ 0; 3; 1; 3; 2; 0; 3; 1; 1; 0 ] in
  let trace = trace8 symbols in
  let data = Trace.raw trace in
  let bulk = Seq_trie.of_trace ~max_len:3 trace in
  let inc = Seq_trie.create ~alphabet_size:8 ~max_len:3 in
  (* add_at records the slice and every prefix, so of_trace is one
     add_at per position at the tail-clamped depth *)
  let n = List.length symbols in
  for pos = 0 to n - 1 do
    Seq_trie.add_at inc data ~pos ~len:(Stdlib.min 3 (n - pos))
  done;
  Alcotest.(check bool) "incremental = bulk" true
    (agrees_with_hash inc trace ~max_len:3);
  Alcotest.(check int) "same nodes" (Seq_trie.node_count bulk)
    (Seq_trie.node_count inc)

let test_large_alphabet () =
  let alphabet = Alphabet.make 300 in
  let trace = Trace.of_array alphabet [| 0; 299; 7; 299; 0; 299 |] in
  let t = Seq_trie.of_trace ~max_len:2 trace in
  let data = Trace.raw trace in
  Alcotest.(check int) "count symbol 299" 3 (Seq_trie.count_at t data ~pos:1 ~len:1);
  Alcotest.(check int) "count 299,7" 1 (Seq_trie.count_at t data ~pos:1 ~len:2);
  Alcotest.(check int) "distinct pairs" 4 (Seq_trie.distinct t 2);
  Alcotest.(check int) "alphabet size" 300 (Seq_trie.alphabet_size t)

let test_iter_slice_sorted () =
  let trace = trace8 [ 3; 1; 3; 0; 3; 1 ] in
  let t = Seq_trie.of_trace ~max_len:2 trace in
  let seen = ref [] in
  Seq_trie.iter_slice t ~depth:2 (fun buf count ->
      seen := (Trace.key_of_symbols buf, count) :: !seen);
  let bindings = List.rev !seen in
  let keys = List.map fst bindings in
  Alcotest.(check bool) "ascending key order" true
    (List.sort String.compare keys = keys);
  let tbl = hash_counts trace ~len:2 in
  Alcotest.(check int) "all distinct pairs visited" (Hashtbl.length tbl)
    (List.length bindings);
  List.iter
    (fun (k, c) ->
      Alcotest.(check int) ("count of " ^ String.escaped k)
        (Hashtbl.find tbl k) c)
    bindings

let test_agrees_on_suite_prefix () =
  let suite = tiny_suite () in
  let training =
    Trace.sub suite.Seqdiv_synth.Suite.training ~pos:0 ~len:5_000
  in
  let trie = Seq_trie.of_trace ~max_len:6 training in
  Alcotest.(check bool) "full agreement" true
    (agrees_with_hash trie training ~max_len:6)

let test_memory_and_stats () =
  let trace = trace8 [ 0; 1; 2; 3 ] in
  let t = Seq_trie.of_trace ~max_len:2 trace in
  Alcotest.(check bool) "memory positive" true (Seq_trie.memory_words t > 0);
  let s = Format.asprintf "%a" Seq_trie.pp_stats t in
  Alcotest.(check bool) "stats mentions nodes" true
    (String.length s > 0 && String.sub s 0 5 = "trie{")

let test_random_probe () =
  let t = Seq_trie.create ~alphabet_size:8 ~max_len:5 in
  let rng = Prng.create ~seed:1 in
  let p = Seq_trie.random_probe t rng ~len:4 in
  Alcotest.(check int) "length" 4 (String.length p);
  String.iter (fun c -> Alcotest.(check bool) "in alphabet" true (Char.code c < 8)) p

let symbols_gen = QCheck.(list_of_size Gen.(3 -- 80) (int_bound 7))

let prop_counts_match_hash_reference =
  qcheck ~count:80 "trie counts = hashtable reference" symbols_gen (fun l ->
      let trace = trace8 l in
      let depth = Stdlib.min 4 (List.length l) in
      let trie = Seq_trie.of_trace ~max_len:depth trace in
      agrees_with_hash trie trace ~max_len:depth)

let prop_ctotal_is_continuations =
  qcheck ~count:80 "ctotal = windows that continue" symbols_gen (fun l ->
      let trace = trace8 l in
      let depth = Stdlib.min 4 (List.length l) in
      if depth < 2 then true
      else begin
        let trie = Seq_trie.of_trace ~max_len:depth trace in
        let data = Trace.raw trace in
        let ok = ref true in
        for len = 1 to depth - 1 do
          Trace.iter_windows trace ~width:len (fun pos ->
              let expect =
                (* occurrences of this slice that are followed by one
                   more symbol, counted the slow way *)
                let c = ref 0 in
                Trace.iter_windows trace ~width:(len + 1) (fun p ->
                    let same = ref true in
                    for i = 0 to len - 1 do
                      if data.(p + i) <> data.(pos + i) then same := false
                    done;
                    if !same then incr c);
                !c
              in
              match Seq_trie.context_at trie data ~pos ~len with
              | None -> if expect <> 0 then ok := false
              | Some node ->
                  if Seq_trie.context_total node <> expect then ok := false)
        done;
        !ok
      end)

let prop_totals_match_window_counts =
  qcheck ~count:80 "trie totals = window counts" symbols_gen (fun l ->
      let trace = trace8 l in
      let depth = Stdlib.min 4 (List.length l) in
      let trie = Seq_trie.of_trace ~max_len:depth trace in
      List.for_all
        (fun n -> Seq_trie.total trie n = Trace.window_count trace ~width:n)
        (List.init depth (fun i -> i + 1)))

let () =
  Alcotest.run "seq_trie"
    [
      ( "seq_trie",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add counts prefixes" `Quick test_add_counts_prefixes;
          Alcotest.test_case "of_trace totals" `Quick test_of_trace_totals;
          Alcotest.test_case "freq" `Quick test_freq;
          Alcotest.test_case "is_rare" `Quick test_is_rare;
          Alcotest.test_case "cursor lookups" `Quick test_cursor_lookups;
          Alcotest.test_case "context semantics" `Quick test_context_semantics;
          Alcotest.test_case "add_at matches of_trace" `Quick
            test_add_at_matches_of_trace;
          Alcotest.test_case "alphabet beyond 256" `Quick test_large_alphabet;
          Alcotest.test_case "iter_slice sorted" `Quick test_iter_slice_sorted;
          Alcotest.test_case "agrees on suite prefix" `Quick
            test_agrees_on_suite_prefix;
          Alcotest.test_case "memory/stats" `Quick test_memory_and_stats;
          Alcotest.test_case "random probe" `Quick test_random_probe;
          prop_counts_match_hash_reference;
          prop_ctotal_is_continuations;
          prop_totals_match_window_counts;
        ] );
    ]
