(* The serve wire codec: binary and ndjson frames must roundtrip
   bit-exactly (scores travel as bits), decode incrementally from
   arbitrarily fragmented input, sniff their encoding from the first
   byte, and reject malformed input with Parse_error — never a silent
   misparse. *)

open Seqdiv_stream
open Seqdiv_test_support

let bits = Int64.bits_of_float

let incident_equal (a : Frame.incident) (b : Frame.incident) =
  a.Frame.first_start = b.Frame.first_start
  && a.Frame.last_start = b.Frame.last_start
  && a.Frame.cover_from = b.Frame.cover_from
  && a.Frame.cover_to = b.Frame.cover_to
  && a.Frame.alarms = b.Frame.alarms
  && Int64.equal (bits a.Frame.peak_score) (bits b.Frame.peak_score)

let incident_event_equal a b =
  match (a, b) with
  | ( Frame.Opened { session = sa; position = pa },
      Frame.Opened { session = sb; position = pb } ) ->
      sa = sb && pa = pb
  | ( Frame.Closed { session = sa; incident = ia },
      Frame.Closed { session = sb; incident = ib } ) ->
      sa = sb && incident_equal ia ib
  | _ -> false

let event_equal a b =
  match (a, b) with
  | ( Frame.Data { session = sa; symbols = xa },
      Frame.Data { session = sb; symbols = xb } ) ->
      sa = sb && xa = xb
  | ( Frame.End_of_session { session = sa },
      Frame.End_of_session { session = sb } ) ->
      sa = sb
  | _ -> false

let request_equal a b =
  match (a, b) with
  | ( Frame.Batch { id = ia; events = ea },
      Frame.Batch { id = ib; events = eb } ) ->
      ia = ib
      && List.length ea = List.length eb
      && List.for_all2 event_equal ea eb
  | Frame.Stats_request, Frame.Stats_request
  | Frame.Health_request, Frame.Health_request
  | Frame.Drain_request, Frame.Drain_request
  | Frame.Quit, Frame.Quit ->
      true
  | _ -> false

let shard_health_equal (a : Frame.shard_health) (b : Frame.shard_health) =
  a.Frame.h_shard = b.Frame.h_shard
  && a.Frame.h_alive = b.Frame.h_alive
  && a.Frame.h_degraded = b.Frame.h_degraded
  && a.Frame.h_restarts = b.Frame.h_restarts
  && a.Frame.h_queue_depth = b.Frame.h_queue_depth
  && a.Frame.h_retry_after_ms = b.Frame.h_retry_after_ms

let response_equal a b =
  match (a, b) with
  | ( Frame.Ack { id = ia; shard = sa; events = ea; incidents = xa },
      Frame.Ack { id = ib; shard = sb; events = eb; incidents = xb } ) ->
      ia = ib && sa = sb && ea = eb
      && List.length xa = List.length xb
      && List.for_all2 incident_event_equal xa xb
  | ( Frame.Rejected { id = ia; retry_after_ms = ra },
      Frame.Rejected { id = ib; retry_after_ms = rb } ) ->
      ia = ib && ra = rb
  | ( Frame.Failed { id = ia; shard = sa; events = ea; reason = ra },
      Frame.Failed { id = ib; shard = sb; events = eb; reason = rb } ) ->
      ia = ib && sa = sb && ea = eb && ra = rb
  | Frame.Stats a, Frame.Stats b -> a = b
  | Frame.Health a, Frame.Health b ->
      a.Frame.connections = b.Frame.connections
      && a.Frame.evictions = b.Frame.evictions
      && a.Frame.draining = b.Frame.draining
      && List.length a.Frame.shards_health = List.length b.Frame.shards_health
      && List.for_all2 shard_health_equal a.Frame.shards_health
           b.Frame.shards_health
  | Frame.Drained { batches = a }, Frame.Drained { batches = b } -> a = b
  | Frame.Error_msg a, Frame.Error_msg b -> a = b
  | _ -> false

(* Feed the encoded frame back through a reader, [step] bytes at a
   time, and return every decoded frame. *)
let decode_all next ~step buf =
  let r = Frame.reader () in
  let s = Buffer.to_bytes buf in
  let n = Bytes.length s in
  let pos = ref 0 in
  while !pos < n do
    let len = Stdlib.min step (n - !pos) in
    Frame.feed_bytes r s ~pos:!pos ~len;
    pos := !pos + len
  done;
  let decoded = ref [] in
  let rec drain () =
    match next r with
    | Some frame ->
        decoded := frame :: !decoded;
        drain ()
    | None -> ()
  in
  drain ();
  (List.rev !decoded, Frame.reader_encoding r)

let roundtrip_requests encoding ~step requests =
  let buf = Buffer.create 256 in
  List.iter (fun q -> Frame.write_request buf encoding q) requests;
  let decoded, sniffed = decode_all Frame.next_request ~step buf in
  Alcotest.(check bool) "encoding sniffed" true (sniffed = Some encoding);
  Alcotest.(check int) "all frames decoded" (List.length requests)
    (List.length decoded);
  List.iter2
    (fun a b -> Alcotest.(check bool) "request roundtrips" true (request_equal a b))
    requests decoded

let roundtrip_responses encoding ~step responses =
  let buf = Buffer.create 256 in
  List.iter (fun r -> Frame.write_response buf encoding r) responses;
  let decoded, _ = decode_all Frame.next_response ~step buf in
  Alcotest.(check int) "all frames decoded" (List.length responses)
    (List.length decoded);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "response roundtrips" true (response_equal a b))
    responses decoded

let sample_incident =
  {
    Frame.first_start = 95;
    last_start = 103;
    cover_from = 95;
    cover_to = 108;
    alarms = 4;
    peak_score = 0.1;
  }

let sample_requests =
  [
    Frame.Batch
      {
        id = 0;
        events =
          [
            Frame.Data { session = 0; symbols = [| 0; 7; 254 |] };
            Frame.Data { session = 123456789; symbols = [| 1 |] };
            Frame.End_of_session { session = 0 };
          ];
      };
    Frame.Batch
      { id = 42; events = [ Frame.Data { session = 7; symbols = [||] } ] };
    Frame.Stats_request;
    Frame.Health_request;
    Frame.Drain_request;
    Frame.Quit;
  ]

let sample_responses =
  [
    Frame.Ack
      {
        id = 42;
        shard = 3;
        events = 17;
        incidents =
          [
            Frame.Opened { session = 9; position = 95 };
            Frame.Closed { session = 9; incident = sample_incident };
          ];
      };
    Frame.Rejected { id = 43; retry_after_ms = 5 };
    Frame.Failed
      {
        id = 44;
        shard = 0;
        events = 3;
        reason = "Deadline.Exceeded(budget=1ms)";
      };
    Frame.Stats
      [
        {
          Frame.shard = 0;
          sessions_resident = 12;
          events = 1000;
          symbols = 64000;
          batches = 4;
          rejected = 1;
          queue_depth = 2;
          bytes_resident = 4096;
          busy_ns = 123456789;
          p50_batch_ns = 440_000;
          p99_batch_ns = 6_572_000;
          restarts = 2;
          degraded = false;
          retry_after_ms = 11;
          windows = 900;
          alarms = 17;
          threshold = 1.0 /. 3.0;
        };
      ];
    Frame.Health
      {
        Frame.shards_health =
          [
            {
              Frame.h_shard = 0;
              h_alive = true;
              h_degraded = false;
              h_restarts = 1;
              h_queue_depth = 3;
              h_retry_after_ms = 12;
              h_windows = 450;
              h_alarms = 9;
              h_threshold = 2.75;
            };
            {
              Frame.h_shard = 1;
              h_alive = false;
              h_degraded = true;
              h_restarts = 3;
              h_queue_depth = 0;
              h_retry_after_ms = 5;
              h_windows = 0;
              h_alarms = 0;
              h_threshold = -0.0;
            };
          ];
        connections = 4;
        evictions = 1;
        draining = true;
      };
    Frame.Drained { batches = 512 };
    Frame.Error_msg "frame: unknown tag 'x'";
  ]

let test_roundtrips () =
  List.iter
    (fun encoding ->
      List.iter
        (fun step ->
          roundtrip_requests encoding ~step sample_requests;
          roundtrip_responses encoding ~step sample_responses)
        [ 1; 3; 4096 ])
    [ Frame.Binary; Frame.Ndjson ]

let test_score_bits_roundtrip () =
  (* ndjson carries the peak score as exact bits alongside the human
     float; awkward values must survive both formats bit-for-bit. *)
  List.iter
    (fun encoding ->
      List.iter
        (fun score ->
          let incident = { sample_incident with Frame.peak_score = score } in
          roundtrip_responses encoding ~step:7
            [
              Frame.Ack
                {
                  id = 1;
                  shard = 0;
                  events = 1;
                  incidents = [ Frame.Closed { session = 0; incident } ];
                };
            ])
        [ 0.1; 1.0 /. 3.0; 1e-300; Float.max_float; 0.0; -0.0 ])
    [ Frame.Binary; Frame.Ndjson ]

let test_sniffing () =
  let r = Frame.reader () in
  Alcotest.(check bool) "no encoding before first byte" true
    (Frame.reader_encoding r = None);
  let buf = Buffer.create 16 in
  Frame.write_request buf Frame.Ndjson Frame.Quit;
  let s = Buffer.to_bytes buf in
  Frame.feed_bytes r s ~pos:0 ~len:1;
  Alcotest.(check bool) "'{' sniffs ndjson" true
    (Frame.reader_encoding r = Some Frame.Ndjson);
  let r2 = Frame.reader () in
  let buf2 = Buffer.create 16 in
  Frame.write_request buf2 Frame.Binary Frame.Quit;
  let s2 = Buffer.to_bytes buf2 in
  Alcotest.(check char) "binary magic leads" Frame.binary_magic (Bytes.get s2 0);
  Frame.feed_bytes r2 s2 ~pos:0 ~len:1;
  Alcotest.(check bool) "magic sniffs binary" true
    (Frame.reader_encoding r2 = Some Frame.Binary)

let expect_parse_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Parse_error" name
  | exception Parse_error.Error _ -> ()

let feed_string next s =
  let r = Frame.reader () in
  let b = Bytes.of_string s in
  Frame.feed_bytes r b ~pos:0 ~len:(Bytes.length b);
  next r

let test_malformed () =
  expect_parse_error "garbage first byte" (fun () ->
      feed_string Frame.next_request "hello\n");
  expect_parse_error "bad json" (fun () ->
      feed_string Frame.next_request "{\"type\": \n");
  expect_parse_error "unknown ndjson type" (fun () ->
      feed_string Frame.next_request "{\"type\":\"bogus\"}\n");
  (* an empty batch is rejected on decode, both formats *)
  expect_parse_error "empty ndjson batch" (fun () ->
      feed_string Frame.next_request "{\"type\":\"batch\",\"id\":0,\"events\":[]}\n");
  (* an oversized binary length prefix fails fast, before any payload *)
  expect_parse_error "oversized frame" (fun () ->
      let b = Bytes.create 5 in
      Bytes.set b 0 Frame.binary_magic;
      Bytes.set_int32_le b 1 0x7fff_ffffl;
      let r = Frame.reader () in
      Frame.feed_bytes r b ~pos:0 ~len:5;
      Frame.next_request r);
  (* symbol out of range in ndjson *)
  expect_parse_error "symbol 255" (fun () ->
      feed_string Frame.next_request
        "{\"type\":\"batch\",\"id\":0,\"events\":[{\"type\":\"data\",\"session\":0,\"symbols\":[255]}]}\n")

let test_write_validation () =
  let buf = Buffer.create 16 in
  Alcotest.check_raises "empty batch refused"
    (Invalid_argument "Frame: a batch must carry at least one event")
    (fun () ->
      Frame.write_request buf Frame.Binary (Frame.Batch { id = 0; events = [] }));
  (match
     Frame.write_request buf Frame.Binary
       (Frame.Batch
          { id = 0; events = [ Frame.Data { session = 0; symbols = [| 255 |] } ] })
   with
  | () -> Alcotest.fail "symbol 255 accepted"
  | exception Invalid_argument _ -> ());
  match
    Frame.write_request buf Frame.Binary
      (Frame.Batch
         { id = -1; events = [ Frame.Data { session = 0; symbols = [| 1 |] } ] })
  with
  | () -> Alcotest.fail "negative id accepted"
  | exception Invalid_argument _ -> ()

let test_shard_of_session () =
  Alcotest.(check int) "one shard takes all" 0
    (Frame.shard_of_session ~shards:1 123);
  for session = 0 to 999 do
    let shard = Frame.shard_of_session ~shards:4 session in
    Alcotest.(check bool) "in range" true (shard >= 0 && shard < 4);
    Alcotest.(check int) "deterministic" shard
      (Frame.shard_of_session ~shards:4 session)
  done;
  (* the hash must actually spread consecutive ids *)
  let counts = Array.make 4 0 in
  for session = 0 to 999 do
    let shard = Frame.shard_of_session ~shards:4 session in
    counts.(shard) <- counts.(shard) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "no starved shard" true (c > 100))
    counts;
  match Frame.shard_of_session ~shards:0 1 with
  | _ -> Alcotest.fail "shards=0 accepted"
  | exception Invalid_argument _ -> ()

let test_render_stable () =
  Alcotest.(check string) "opened line" "session 9 opened 95"
    (Frame.render_incident_event (Frame.Opened { session = 9; position = 95 }));
  Alcotest.(check string) "closed line"
    (Printf.sprintf
       "session 9 closed first=95 last=103 cover=95..108 alarms=4 peak=%016Lx"
       (Int64.bits_of_float 0.1))
    (Frame.render_incident_event
       (Frame.Closed { session = 9; incident = sample_incident }))

(* {1 Property: arbitrary batches roundtrip through both codecs} *)

let gen_event =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map2
            (fun session symbols ->
              Frame.Data { session; symbols = Array.of_list symbols })
            (int_bound 10_000)
            (list_size (0 -- 40) (int_bound 254)) );
        (1, map (fun session -> Frame.End_of_session { session }) (int_bound 10_000));
      ])

let gen_batch =
  QCheck.Gen.(
    map2
      (fun id events -> Frame.Batch { id; events })
      (int_bound 1_000_000)
      (list_size (1 -- 20) gen_event))

let arbitrary_batch = QCheck.make gen_batch

let prop_roundtrip encoding name =
  qcheck ~count:100 name arbitrary_batch (fun batch ->
      let buf = Buffer.create 256 in
      Frame.write_request buf encoding batch;
      let decoded, _ = decode_all Frame.next_request ~step:5 buf in
      match decoded with
      | [ decoded ] -> request_equal batch decoded
      | _ -> false)

let () =
  Alcotest.run "frame"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrips" `Quick test_roundtrips;
          Alcotest.test_case "score bits" `Quick test_score_bits_roundtrip;
          Alcotest.test_case "sniffing" `Quick test_sniffing;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "write validation" `Quick test_write_validation;
          Alcotest.test_case "shard routing" `Quick test_shard_of_session;
          Alcotest.test_case "stable rendering" `Quick test_render_stable;
          prop_roundtrip Frame.Binary "binary batches roundtrip";
          prop_roundtrip Frame.Ndjson "ndjson batches roundtrip";
        ] );
    ]
