(* The whole detector zoo side by side: the paper's four detectors plus
   the t-stide and HMM extensions, compared on one cell of the
   evaluation grid and on benign deployment noise.  A compact view of
   the diversity result: who detects, who is blind, and what each pays
   in false alarms.

   Run with: dune exec examples/detector_zoo.exe *)

open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors

let () =
  let params = Suite.scaled_params ~train_len:100_000 ~background_len:5_000 in
  let suite = Suite.build params in
  (* A window shorter than the anomaly: the cell where diversity shows. *)
  let window = 4 and anomaly_size = 7 in
  let test = Suite.stream suite ~anomaly_size ~window in
  let inj = test.Suite.injection in
  let deploy = Deployment.deployment_stream suite ~len:20_000 ~seed:5 in

  Printf.printf
    "anomaly: minimal foreign sequence of size %d; detector window %d \
     (window < anomaly)\n\
     deployment noise: 20k elements sampled from the generating chain\n\n"
    anomaly_size window;
  Printf.printf "%-8s %-18s %-10s %s\n" "detector" "span outcome"
    "FA count" "verdict";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun ((module D : Detector.S) as detector) ->
      let trained = Trained.train detector ~window suite.Suite.training in
      let outcome = Scoring.outcome trained inj in
      let fa = False_alarm.on_clean trained deploy in
      let verdict =
        match (outcome, fa.False_alarm.alarms) with
        | Outcome.Capable _, 0 -> "detects, quiet"
        | Outcome.Capable _, _ -> "detects, noisy"
        | Outcome.Weak _, _ -> "senses something, threshold-1 miss"
        | Outcome.Blind, _ -> "sees nothing"
        | Outcome.Failed _, _ -> "cell failed (supervised run only)"
      in
      Printf.printf "%-8s %-18s %-10d %s\n" D.name
        (Outcome.to_string outcome)
        fa.False_alarm.alarms verdict)
    Registry.extended;
  print_endline
    "\nThe paper's conclusion in one table: the probabilistic/rare-sensitive\n\
     detectors (markov, nn, tstide, hmm) cover the space but pay in false\n\
     alarms; stide is quiet but blind until its window spans the anomaly;\n\
     lnb never reaches a maximal response at all."
